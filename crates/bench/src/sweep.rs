//! Deterministic parallel sweep engine.
//!
//! Every figure decomposes into self-contained [`SweepCell`] jobs — one per
//! (workload, config) point — that share **no** mutable state: each cell
//! rebuilds its inputs (graphs, runtimes, traffic matrices) from the
//! experiment seed, and any cell-local stochastic choice draws from a stream
//! derived with [`SimRng::split`] from `(experiment seed, cell id)`, never
//! from a generator another cell might have advanced. Cells therefore compute
//! the same bits no matter which worker runs them or in which order.
//!
//! [`run_plans`] executes the cells of one or more [`SweepPlan`]s on a
//! `std::thread::scope` worker pool (`jobs` workers pulling indices from an
//! atomic counter) and then merges results back **in declaration order**, so
//! the produced [`Figure`]s are byte-identical to a `jobs = 1` run. Per-cell
//! wall time and simulated-cycle throughput are recorded in a
//! [`SweepReport`] for the perf trajectory
//! (`BENCH_sweep.json`).
//!
//! Cells fail soft: a panicking cell is caught (`catch_unwind`), recorded as
//! a cell-level error in the report, and surfaced as `NaN` rows / notes in
//! the merged figure — one broken cell never aborts the harness.
//!
//! Run-to-completion extras (all opt-in via [`RunOpts`]):
//!
//! * **per-cell timeout** — the cell runs on a watchdog thread; if it blows
//!   `cell_timeout_ms` of wall clock the worker abandons it and records a
//!   `timeout:` error instead of hanging the sweep;
//! * **bounded retry** — a panicked or timed-out cell re-runs up to
//!   `max_retries` times, each attempt on a deterministically re-split RNG
//!   stream (attempt 0 uses the unchanged stream, so retry-free runs are
//!   byte-identical to the engine without this feature);
//! * **checkpoint journal** — every outcome is appended (fsync'd,
//!   checksummed) to a [`crate::journal`] file; with `resume` the journal's
//!   intact prefix is replayed and only missing or failed cells execute.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::journal::{read_journal, JournalEntry, JournalError, JournalWriter};
use crate::report::{CellStat, Figure, Row, SweepReport};
use aff_nsc::engine::Metrics;
use aff_sim_core::config::MachineConfig;
use aff_sim_core::error::SimError;
use aff_sim_core::fault::{self, FaultTimeline};
use aff_sim_core::mine::{self, MinedTrace};
use aff_sim_core::rng::SimRng;
use aff_workloads::suite::SuiteRun;

/// What one cell computed.
#[derive(Debug, Clone)]
pub enum CellData {
    /// Engine metrics of a single simulated run.
    Metrics(Box<Metrics>),
    /// Metrics plus per-iteration stats (frontier workloads).
    Run(Box<SuiteRun>),
    /// Pre-rendered figure rows (single-cell figures, tables), with the
    /// simulated cycles they covered (0 when no simulation ran).
    Rows {
        /// The rows, in declaration order.
        rows: Vec<Row>,
        /// Simulated cycles behind those rows.
        sim_cycles: u64,
    },
}

impl CellData {
    /// The metrics behind this cell, when it ran a single simulation.
    pub fn metrics(&self) -> Option<&Metrics> {
        match self {
            CellData::Metrics(m) => Some(m),
            CellData::Run(r) => Some(&r.metrics),
            CellData::Rows { .. } => None,
        }
    }

    /// Simulated cycles this cell covered (throughput accounting).
    pub fn sim_cycles(&self) -> u64 {
        match self {
            CellData::Rows { sim_cycles, .. } => *sim_cycles,
            other => other.metrics().map_or(0, |m| m.cycles),
        }
    }
}

impl From<Metrics> for CellData {
    fn from(m: Metrics) -> Self {
        CellData::Metrics(Box::new(m))
    }
}

impl From<SuiteRun> for CellData {
    fn from(r: SuiteRun) -> Self {
        CellData::Run(Box::new(r))
    }
}

/// Outcome of one executed cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Cell label (row-oriented, e.g. `"bfs/Hybrid-5"`).
    pub label: String,
    /// Data, or the cell-level error message.
    pub result: Result<CellData, String>,
}

/// Read access to a plan's executed cells, indexed by the ids
/// [`PlanBuilder::cell`] returned. All accessors are failure-tolerant:
/// a failed (or differently-shaped) cell reads as `None`, so merge
/// functions degrade to `NaN` rows instead of panicking.
#[derive(Debug)]
pub struct Outcomes<'a> {
    cells: &'a [CellOutcome],
}

impl<'a> Outcomes<'a> {
    /// Number of cells in the plan.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan had no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Metrics of cell `i`, if it succeeded with a metrics-shaped result.
    pub fn metrics(&self, i: usize) -> Option<&'a Metrics> {
        self.cells
            .get(i)
            .and_then(|c| c.result.as_ref().ok())
            .and_then(|d| d.metrics())
    }

    /// Full run (metrics + per-iteration stats) of cell `i`.
    pub fn run(&self, i: usize) -> Option<&'a SuiteRun> {
        match self.cells.get(i).and_then(|c| c.result.as_ref().ok()) {
            Some(CellData::Run(r)) => Some(r),
            _ => None,
        }
    }

    /// Pre-rendered rows of cell `i`.
    pub fn rows(&self, i: usize) -> Option<&'a [Row]> {
        match self.cells.get(i).and_then(|c| c.result.as_ref().ok()) {
            Some(CellData::Rows { rows, .. }) => Some(rows),
            _ => None,
        }
    }

    /// Speedup of cell `i` over cell `base` (`NaN` when either failed).
    pub fn speedup(&self, i: usize, base: usize) -> f64 {
        match (self.metrics(i), self.metrics(base)) {
            (Some(m), Some(b)) => m.speedup_over(b),
            _ => f64::NAN,
        }
    }

    /// Traffic of cell `i` relative to cell `base` (`NaN` on failure).
    pub fn traffic(&self, i: usize, base: usize) -> f64 {
        match (self.metrics(i), self.metrics(base)) {
            (Some(m), Some(b)) => m.traffic_vs(b),
            _ => f64::NAN,
        }
    }

    /// Energy efficiency of cell `i` over cell `base` (`NaN` on failure).
    pub fn energy_eff(&self, i: usize, base: usize) -> f64 {
        match (self.metrics(i), self.metrics(base)) {
            (Some(m), Some(b)) => m.energy_eff_over(b),
            _ => f64::NAN,
        }
    }

    /// A metrics field of cell `i`, or `NaN` when the cell failed.
    pub fn field(&self, i: usize, f: impl Fn(&Metrics) -> f64) -> f64 {
        self.metrics(i).map_or(f64::NAN, f)
    }

    /// Append one `note:` line per failed cell, so broken cells are visible
    /// in the rendered figure without aborting the merge.
    pub fn annotate_failures(&self, fig: &mut Figure) {
        for c in self.cells {
            if let Err(e) = &c.result {
                fig.note(format!("cell {} FAILED: {e}", c.label));
            }
        }
    }
}

type CellJob = Arc<dyn Fn(&mut SimRng) -> CellData + Send + Sync>;
type MergeFn = Box<dyn FnOnce(&Outcomes<'_>) -> Figure + Send>;

/// One self-contained (workload, config) job.
pub struct SweepCell {
    label: String,
    job: CellJob,
}

/// A figure decomposed into cells plus the order-stable merge that
/// reassembles the [`Figure`] from their outcomes.
pub struct SweepPlan {
    /// Figure id (`"fig12"`, …).
    pub figure: &'static str,
    cells: Vec<SweepCell>,
    merge: MergeFn,
}

impl SweepPlan {
    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Cell labels, in declaration order.
    pub fn cell_labels(&self) -> Vec<&str> {
        self.cells.iter().map(|c| c.label.as_str()).collect()
    }
}

/// Builder: declare cells (capturing their id for the merge), then attach
/// the merge function.
pub struct PlanBuilder {
    figure: &'static str,
    cells: Vec<SweepCell>,
}

impl PlanBuilder {
    /// Start a plan for `figure`.
    pub fn new(figure: &'static str) -> Self {
        Self {
            figure,
            cells: Vec::new(),
        }
    }

    /// Declare a cell; returns its id for use inside the merge function.
    ///
    /// The job receives a private RNG stream derived with [`SimRng::split`]
    /// from `(experiment seed, figure, cell index)`; jobs must take any
    /// cell-local randomness from it (and nothing else) so results stay
    /// independent of scheduling order. Jobs are `Fn` (not `FnOnce`) so a
    /// timed-out or panicked cell can be retried on a fresh RNG stream.
    pub fn cell<F>(&mut self, label: impl Into<String>, job: F) -> usize
    where
        F: Fn(&mut SimRng) -> CellData + Send + Sync + 'static,
    {
        self.cells.push(SweepCell {
            label: label.into(),
            job: Arc::new(job),
        });
        self.cells.len() - 1
    }

    /// Declare a **closed-loop** cell: the annotate → profile → infer loop
    /// as a single self-contained job.
    ///
    /// `profile` runs first with a fresh thread-local
    /// [`CoAccessMiner`](aff_sim_core::mine::CoAccessMiner) installed — every
    /// engine built on the worker thread streams its access events into it.
    /// The mined summary is then handed to `replay`, whose output becomes
    /// the cell's data. Because both phases live inside one cell, the loop
    /// inherits every engine guarantee for free: byte-identical across
    /// `--jobs`, memo/journal-cacheable as one outcome, retried as a unit.
    ///
    /// The miner is taken down even when `profile` panics, so a broken
    /// profiling phase cannot leak a recorder into whatever cell the pooled
    /// worker thread picks up next; the panic then propagates into the
    /// engine's normal fail-soft path.
    pub fn closed_loop_cell<P, R>(&mut self, label: impl Into<String>, profile: P, replay: R) -> usize
    where
        P: Fn(&mut SimRng) + Send + Sync + 'static,
        R: Fn(&mut SimRng, MinedTrace) -> CellData + Send + Sync + 'static,
    {
        self.cell(label, move |rng| {
            mine::install_thread_miner();
            let profiled = catch_unwind(AssertUnwindSafe(|| profile(rng)));
            let trace = mine::take_thread_miner().unwrap_or_default();
            match profiled {
                Ok(()) => replay(rng, trace),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })
    }

    /// Attach the merge function and finish the plan.
    pub fn merge<F>(self, f: F) -> SweepPlan
    where
        F: FnOnce(&Outcomes<'_>) -> Figure + Send + 'static,
    {
        SweepPlan {
            figure: self.figure,
            cells: self.cells,
            merge: Box::new(f),
        }
    }
}

/// FNV-1a over the figure id, xor-folded with the cell index: a stable,
/// declaration-order-independent stream id for [`SimRng::split`].
fn stream_id(figure: &str, index: usize) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in figure.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Execution policy for one sweep run. [`RunOpts::new`] gives the legacy
/// behavior: no timeout, no retries, no journal.
#[derive(Debug, Clone, Default)]
pub struct RunOpts {
    /// Worker count (clamped to ≥ 1).
    pub jobs: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Per-cell wall-clock timeout in milliseconds. `None` runs cells
    /// inline on the worker; `Some` runs each cell on a watchdog thread
    /// that is abandoned when the deadline passes.
    pub cell_timeout_ms: Option<u64>,
    /// Re-run a panicked or timed-out cell up to this many extra times,
    /// attempt `k > 0` on an RNG stream re-split from `(stream, k)`.
    pub max_retries: u32,
    /// Checkpoint journal path; `None` disables journaling.
    pub journal: Option<std::path::PathBuf>,
    /// Replay the journal's intact prefix and skip its completed cells.
    pub resume: bool,
    /// Experiment context hash (figure set, scale) stamped into the journal
    /// header; a mismatch on resume discards the journal.
    pub context: u64,
    /// Record the per-cell [`CellMetrics`](crate::report::CellMetrics)
    /// sidecar (schema `aff-bench/sweep-v4`) for every cell that produces
    /// engine metrics. Off by default: the sidecar roughly doubles the sweep
    /// report and most runs only need the throughput columns.
    pub collect_metrics: bool,
    /// Chaos mode: sample a deterministic per-cell [`FaultTimeline`] from
    /// this seed (split on the cell's own stream id, so results are
    /// schedule-independent) and install it thread-locally around the cell.
    /// Every finished cell is held to the online chaos invariants; a
    /// violation fails the cell soft — into the same retry/journal
    /// machinery as a panic — rather than aborting the sweep.
    pub chaos: Option<u64>,
    /// Fault-event budget per sampled chaos timeline (0 means the default
    /// of 4; only read when `chaos` is set).
    pub chaos_intensity: u32,
    /// Cross-run memo store path ([`crate::memo`]); `None` disables
    /// memoization. Unlike the journal — which pins one experiment — the
    /// memo caches cells across runs by content hash, so overlapping
    /// experiments (figure subsets, repeated runs) reuse each other's cells.
    pub memo: Option<std::path::PathBuf>,
    /// Harness configuration hash folded into every memo key (scale,
    /// geometry, tenant count — everything that reshapes cell inputs but is
    /// not already in the key via seed/chaos/figure/cell).
    pub memo_config: u64,
}

impl RunOpts {
    /// Legacy options: run everything, no timeout/retry/journal.
    pub fn new(jobs: usize, seed: u64) -> Self {
        Self {
            jobs,
            seed,
            ..Self::default()
        }
    }
}

struct Task {
    plan_idx: usize,
    cell_idx: usize,
    figure: &'static str,
    label: String,
    job: CellJob,
}

/// Stream perturbation for retry attempt `k`: zero for `k = 0` (first
/// attempts are byte-identical to a retry-free engine), a full-avalanche
/// odd-constant multiply otherwise — a distinct deterministic stream per
/// attempt, per cell.
fn retry_stream(base: u64, attempt: u32) -> u64 {
    base ^ u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// The metrics sidecar for one cell result, when collection is enabled and
/// the cell produced engine metrics (table-style and failed cells read as
/// `None`). Cached journal replays go through here too, so a resumed run's
/// report carries the same sidecars as an uninterrupted one.
fn sidecar(
    result: &Result<CellData, String>,
    opts: &RunOpts,
) -> Option<crate::report::CellMetrics> {
    if !opts.collect_metrics {
        return None;
    }
    result
        .as_ref()
        .ok()
        .and_then(CellData::metrics)
        .map(crate::report::CellMetrics::from)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "cell panicked".to_string())
}

/// Sample the chaos timeline for one attempt, when chaos mode is on. The
/// generator splits on the attempt's RNG stream, so the timeline is as
/// schedule-independent (and retry-perturbed) as the cell's own randomness.
fn chaos_timeline(opts: &RunOpts, stream: u64) -> Option<FaultTimeline> {
    opts.chaos.map(|chaos_seed| {
        let mut rng = SimRng::split(chaos_seed, stream);
        FaultTimeline::chaos(
            &mut rng,
            &MachineConfig::paper_default(),
            opts.chaos_intensity.max(4),
        )
    })
}

/// Online invariant checks a chaos cell's result must pass. Cells without
/// engine metrics (pre-rendered tables) only carry the no-panic guarantee.
fn chaos_invariants(data: &CellData, timeline: &FaultTimeline) -> Result<(), String> {
    let Some(m) = data.metrics() else {
        return Ok(());
    };
    // Conservation: the per-class flit counters partition the total.
    let class_sum: u64 = m.hop_flits.iter().sum();
    if class_sum != m.total_hop_flits {
        return Err(format!(
            "flit conservation: classes sum to {class_sum}, total says {}",
            m.total_hop_flits
        ));
    }
    // Monotone cycles: the estimate is exactly the (nonzero) breakdown total.
    if m.cycles == 0 || m.cycles != m.breakdown.total().max(1) {
        return Err(format!(
            "cycle monotonicity: cycles {} vs breakdown total {}",
            m.cycles,
            m.breakdown.total()
        ));
    }
    // The transition log must be an order-preserving subsequence of the
    // installed timeline (engines drop events their machine cannot express,
    // and events past the run's end never fire — but nothing may fire out
    // of order or from outside the schedule).
    let mut remaining = timeline.events().iter();
    for t in &m.transitions {
        if !remaining.any(|e| e == t) {
            return Err(format!("transition {t:?} is not in the installed timeline"));
        }
    }
    if m.degradation.fault_epochs != m.transitions.len() as u64 {
        return Err(format!(
            "epoch count: report says {}, transition log has {}",
            m.degradation.fault_epochs,
            m.transitions.len()
        ));
    }
    Ok(())
}

/// One in-thread execution: install the attempt's chaos timeline (when
/// present) for the duration of the job, catch panics, and hold the
/// finished cell to the chaos invariants. The timeline is uninstalled even
/// when the job panics — workers are reused across cells.
fn run_attempt(
    job: &CellJob,
    seed: u64,
    stream: u64,
    chaos: Option<FaultTimeline>,
) -> Result<CellData, String> {
    if let Some(tl) = &chaos {
        fault::install_thread_chaos(tl.clone());
    }
    let mut rng = SimRng::split(seed, stream);
    let result = catch_unwind(AssertUnwindSafe(|| job(&mut rng))).map_err(panic_message);
    if chaos.is_some() {
        let _ = fault::take_thread_chaos();
    }
    if let (Ok(data), Some(tl)) = (&result, &chaos) {
        chaos_invariants(data, tl).map_err(|e| format!("chaos invariant violated: {e}"))?;
    }
    result
}

/// One execution attempt: inline on the calling worker, or — when a timeout
/// is configured — on a watchdog thread that the worker abandons if the
/// deadline passes (the thread keeps running detached; its result is
/// discarded on arrival).
fn attempt_cell(job: &CellJob, opts: &RunOpts, stream: u64) -> Result<CellData, String> {
    let seed = opts.seed;
    let chaos = chaos_timeline(opts, stream);
    match opts.cell_timeout_ms {
        None => run_attempt(job, seed, stream, chaos),
        Some(ms) => {
            let (tx, rx) = std::sync::mpsc::channel();
            let job = Arc::clone(job);
            let spawned = std::thread::Builder::new()
                .name("sweep-cell".into())
                .spawn(move || {
                    let _ = tx.send(run_attempt(&job, seed, stream, chaos));
                });
            match spawned {
                Err(e) => Err(format!("could not spawn cell thread: {e}")),
                Ok(_handle) => match rx.recv_timeout(std::time::Duration::from_millis(ms)) {
                    Ok(result) => result,
                    Err(_) => Err(aff_sim_core::error::SimError::Timeout { limit_ms: ms }
                        .to_string()),
                },
            }
        }
    }
}

/// Run one task under the retry/timeout policy, catching panics so a broken
/// cell degrades to an error outcome instead of killing the harness.
fn run_task(task: Task, opts: &RunOpts) -> (usize, usize, CellOutcome, CellStat) {
    let base_stream = stream_id(task.figure, task.cell_idx);
    let start = Instant::now();
    let mut attempts = 0u32;
    let result = loop {
        let stream = retry_stream(base_stream, attempts);
        attempts += 1;
        let result = attempt_cell(&task.job, opts, stream);
        if result.is_ok() || attempts > opts.max_retries {
            break result;
        }
    };
    let wall_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let stat = CellStat {
        figure: task.figure.to_string(),
        label: task.label.clone(),
        ok: result.is_ok(),
        error: result.as_ref().err().cloned(),
        wall_ns,
        sim_cycles: result.as_ref().map_or(0, CellData::sim_cycles),
        attempts,
        cached: false,
        metrics: sidecar(&result, opts),
    };
    (
        task.plan_idx,
        task.cell_idx,
        CellOutcome {
            label: task.label,
            result,
        },
        stat,
    )
}

/// Mutable journal side of a run: the writer (when journaling is on) and the
/// first [`SimError::Journal`] that disabled it. Workers serialize on a mutex
/// around this — appends are tiny next to cell compute time.
struct JournalState {
    writer: Option<JournalWriter>,
    error: Option<SimError>,
}

impl JournalState {
    /// Degrade to journal-less execution: drop the writer, keep the typed
    /// error for the report, and warn immediately on stderr — a full disk
    /// (`ENOSPC`) or dying device (`EIO`) mid-sweep costs durability, never
    /// the figures.
    fn degrade(&mut self, op: &'static str, err: &std::io::Error) {
        self.writer = None;
        let typed = SimError::journal(op, err);
        eprintln!("warning: {typed}");
        self.error = Some(typed);
    }
}

/// Memo key for one task under this run's options — the content hash of
/// everything the cell's bytes depend on (see [`crate::memo`]).
fn memo_key_for(task: &Task, opts: &RunOpts, salt: u64) -> u64 {
    crate::memo::memo_key(&crate::memo::KeyParts {
        salt,
        config: opts.memo_config,
        seed: opts.seed,
        chaos: opts.chaos,
        chaos_intensity: opts.chaos_intensity,
        figure: task.figure,
        cell_idx: task.cell_idx as u64,
        label: &task.label,
    })
}

/// Record one successfully executed cell in the memo store (when one is
/// open). Failed cells are never memoized — they retry on the next run.
fn memo_fill(
    memo: &Mutex<Option<crate::memo::MemoStore>>,
    key: Option<u64>,
    figure: &str,
    cell_idx: usize,
    outcome: &CellOutcome,
    stat: &CellStat,
) {
    let Some(key) = key else { return };
    if outcome.result.is_err() {
        return;
    }
    let mut m = memo
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(store) = m.as_mut() {
        store.insert(
            key,
            &JournalEntry {
                figure: figure.to_string(),
                cell_idx: cell_idx as u64,
                label: outcome.label.clone(),
                attempts: stat.attempts,
                wall_ns: stat.wall_ns,
                result: outcome.result.clone(),
            },
        );
    }
}

/// Append one finished cell to the journal; an append failure (fsync/write —
/// ENOSPC, EIO, ...) disables journaling for the rest of the run via
/// [`JournalState::degrade`] rather than aborting the sweep.
fn journal_append(
    state: &Mutex<JournalState>,
    figure: &str,
    cell_idx: usize,
    outcome: &CellOutcome,
    stat: &CellStat,
) {
    let mut s = state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(w) = s.writer.as_mut() {
        let entry = JournalEntry {
            figure: figure.to_string(),
            cell_idx: cell_idx as u64,
            label: outcome.label.clone(),
            attempts: stat.attempts,
            wall_ns: stat.wall_ns,
            result: outcome.result.clone(),
        };
        if let Err(e) = w.append(&entry) {
            s.degrade("append", &e);
        }
    }
}

/// Execute `plans` with `jobs` workers and merge each plan's figure in
/// declaration order — the legacy entry point, equivalent to
/// [`run_plans_opts`] with [`RunOpts::new`].
///
/// Output is byte-identical for every `jobs >= 1`: cells share no state,
/// their RNG streams come from order-insensitive splitting, and both the
/// outcome vector and the returned figures follow declaration order, not
/// completion order. (The [`SweepReport`] records *measured* wall times and
/// is the one output that legitimately differs between runs.)
pub fn run_plans(plans: Vec<SweepPlan>, jobs: usize, seed: u64) -> (Vec<Figure>, SweepReport) {
    run_plans_opts(plans, &RunOpts::new(jobs, seed))
}

/// Execute `plans` under the full [`RunOpts`] policy (timeouts, retries,
/// checkpoint journal, resume). The byte-identity guarantee extends to
/// resumed runs: a journaled cell replays the exact bits it computed before
/// the interruption, so `--resume` output matches an uninterrupted run.
pub fn run_plans_opts(plans: Vec<SweepPlan>, opts: &RunOpts) -> (Vec<Figure>, SweepReport) {
    let jobs = opts.jobs.max(1);
    let seed = opts.seed;
    let total_start = Instant::now();

    // Flatten every plan's cells into one task list (stable global order).
    let mut shapes: Vec<(usize, &'static str, MergeFn)> = Vec::with_capacity(plans.len());
    let mut tasks: Vec<Task> = Vec::new();
    for (plan_idx, plan) in plans.into_iter().enumerate() {
        shapes.push((plan.cells.len(), plan.figure, plan.merge));
        for (cell_idx, cell) in plan.cells.into_iter().enumerate() {
            tasks.push(Task {
                plan_idx,
                cell_idx,
                figure: shapes[plan_idx].1,
                label: cell.label,
                job: cell.job,
            });
        }
    }
    let n_tasks = tasks.len();

    // Harvest longest-cell-first scheduling hints from whatever journal the
    // previous run left, *before* the writer truncates it below. The lenient
    // read ignores the seed/context header on purpose: a stale journal still
    // predicts which cells are big, and hints only shape the work-stealing
    // seed order — never output bytes.
    let wall_hints: std::collections::BTreeMap<(String, u64), u64> = opts
        .journal
        .as_deref()
        .map(crate::journal::read_wall_hints)
        .unwrap_or_default();

    // Journal setup: resume replays the intact prefix (cached entries skip
    // execution below); a missing or mismatched journal re-runs everything
    // against a fresh file; I/O errors degrade to no journaling, recorded in
    // the report.
    let mut cached: std::collections::BTreeMap<(String, u64), JournalEntry> = Default::default();
    let mut journal = JournalState {
        writer: None,
        error: None,
    };
    if let Some(path) = &opts.journal {
        let (op, created) = if opts.resume {
            match read_journal(path, seed, opts.context) {
                Ok(replay) => {
                    cached = replay.entries;
                    ("resume", JournalWriter::resume(path, replay.valid_len))
                }
                Err(JournalError::Missing | JournalError::HeaderMismatch) => {
                    ("create", JournalWriter::create(path, seed, opts.context))
                }
                Err(JournalError::Io(e)) => ("resume", Err(e)),
            }
        } else {
            ("create", JournalWriter::create(path, seed, opts.context))
        };
        match created {
            Ok(w) => journal.writer = Some(w),
            Err(e) => journal.degrade(op, &e),
        }
    }

    // Cross-run memo store: unlike the journal above — scoped to one
    // experiment and truncated by every fresh run — the memo persists cells
    // across runs keyed by content hash. A stale store (salt from another
    // code version) was already discarded by `open`.
    let memo_salt = crate::memo::code_salt();
    let mut memo_store = opts
        .memo
        .as_deref()
        .map(|p| crate::memo::MemoStore::open(p, memo_salt));
    if let Some(err) = memo_store.as_ref().and_then(|m| m.error.as_deref()) {
        eprintln!("warning: memo store disabled: {err}");
    }
    if memo_store.as_ref().is_some_and(|m| m.invalidated) {
        eprintln!("note: memo store was stale (different code version); starting fresh");
    }

    // Split tasks into journal hits (successful outcome for the exact same
    // figure/cell/label), memo hits (successful outcome under the exact
    // content hash), and cells that still need to run. Failed journal or
    // memo entries are deliberately *not* reused: they retry.
    let mut done: Vec<(usize, usize, CellOutcome, CellStat)> = Vec::with_capacity(n_tasks);
    let mut to_run: Vec<Task> = Vec::with_capacity(tasks.len());
    let mut memo_hits = 0usize;
    for t in tasks {
        let hit = cached
            .get(&(t.figure.to_string(), t.cell_idx as u64))
            .filter(|e| e.label == t.label && e.result.is_ok());
        if let Some(e) = hit {
            let stat = CellStat {
                figure: t.figure.to_string(),
                label: t.label.clone(),
                ok: true,
                error: None,
                wall_ns: e.wall_ns,
                sim_cycles: e.result.as_ref().map_or(0, |d| d.sim_cycles()),
                attempts: e.attempts,
                cached: true,
                metrics: sidecar(&e.result, opts),
            };
            // Warm the memo from the journal replay too: resumed cells are
            // just as reusable by future runs as freshly executed ones.
            if let Some(m) = memo_store.as_mut() {
                let key = memo_key_for(&t, opts, memo_salt);
                if m.get(key).is_none() {
                    m.insert(key, e);
                }
            }
            done.push((
                t.plan_idx,
                t.cell_idx,
                CellOutcome {
                    label: t.label,
                    result: e.result.clone(),
                },
                stat,
            ));
            continue;
        }
        let memo_entry = memo_store.as_ref().and_then(|m| {
            m.get(memo_key_for(&t, opts, memo_salt))
                // The key already covers figure/cell/label, but a hash
                // collision must degrade to a miss, never a wrong replay.
                .filter(|e| {
                    e.figure == t.figure && e.cell_idx == t.cell_idx as u64 && e.label == t.label
                })
                .filter(|e| e.result.is_ok())
                .cloned()
        });
        match memo_entry {
            Some(e) => {
                memo_hits += 1;
                let stat = CellStat {
                    figure: t.figure.to_string(),
                    label: t.label.clone(),
                    ok: true,
                    error: None,
                    wall_ns: e.wall_ns,
                    sim_cycles: e.result.as_ref().map_or(0, |d| d.sim_cycles()),
                    attempts: e.attempts,
                    cached: true,
                    metrics: sidecar(&e.result, opts),
                };
                // Keep the journal complete: a replayed cell is appended so
                // a later --resume of *this* experiment sees it.
                if let Some(w) = journal.writer.as_mut() {
                    if let Err(err) = w.append(&e) {
                        journal.degrade("append", &err);
                    }
                }
                done.push((
                    t.plan_idx,
                    t.cell_idx,
                    CellOutcome {
                        label: t.label,
                        result: e.result,
                    },
                    stat,
                ));
            }
            None => to_run.push(t),
        }
    }
    let resumed_cells = done.len() - memo_hits;

    // Execute. `--jobs 1` runs cells inline in declaration order. Parallel
    // runs use a work-stealing pool: each worker owns a deque of task
    // indices, seeded longest-cell-first from the journaled wall times of
    // the previous run (cold runs fall back to declaration order) and dealt
    // round-robin so every worker starts on a big cell instead of the old
    // index-counter pool's failure mode — small cells queueing behind one
    // straggler while finished workers idle. A worker pops its own front
    // (its biggest remaining seed); when empty it steals a victim's *back*
    // (the victim's smallest), which keeps the expensive cells with the
    // workers that were seeded for them. Results carry their (plan, cell)
    // coordinates and cell RNG streams split from order-insensitive ids, so
    // neither seeding nor stealing can change output bytes. Each finished
    // cell is journaled before the worker moves on, so a kill at any
    // instant loses at most the cells then in flight.
    let journal = Mutex::new(journal);
    let memo = Mutex::new(memo_store);
    let executed: Vec<(usize, usize, CellOutcome, CellStat)> = if jobs == 1 || to_run.len() <= 1 {
        to_run
            .into_iter()
            .map(|t| {
                let key = opts.memo.is_some().then(|| memo_key_for(&t, opts, memo_salt));
                let figure = t.figure;
                let r = run_task(t, opts);
                journal_append(&journal, figure, r.1, &r.2, &r.3);
                memo_fill(&memo, key, figure, r.1, &r.2, &r.3);
                r
            })
            .collect()
    } else {
        let n_run = to_run.len();
        let workers = jobs.min(n_run);
        let mut order: Vec<usize> = (0..n_run).collect();
        order.sort_by_key(|&i| {
            let t = &to_run[i];
            let hint = wall_hints
                .get(&(t.figure.to_string(), t.cell_idx as u64))
                .copied()
                .unwrap_or(0);
            // Descending wall hint; unknown cells (hint 0) keep declaration
            // order at the tail.
            (std::cmp::Reverse(hint), i)
        });
        let slots: Vec<std::sync::Mutex<Option<Task>>> = to_run
            .into_iter()
            .map(|t| std::sync::Mutex::new(Some(t)))
            .collect();
        let deques: Vec<std::sync::Mutex<std::collections::VecDeque<usize>>> = (0..workers)
            .map(|w| {
                std::sync::Mutex::new(order.iter().skip(w).step_by(workers).copied().collect())
            })
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let slots = &slots;
                    let deques = &deques;
                    let journal = &journal;
                    let memo = &memo;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            // Own front first, then a cyclic victim scan.
                            // Indices leave a deque exactly once (under its
                            // mutex) and are never re-queued, so a worker
                            // that sees every deque empty can safely exit.
                            // Recover from poisoning rather than unwrap so
                            // a panicking sibling worker (a harness bug,
                            // cells themselves are caught) can't cascade.
                            let mut claimed = None;
                            for v in 0..workers {
                                let mut q = deques[(w + v) % workers]
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                                claimed = if v == 0 { q.pop_front() } else { q.pop_back() };
                                if claimed.is_some() {
                                    break;
                                }
                            }
                            let Some(i) = claimed else { break };
                            let task = slots[i]
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .take();
                            if let Some(task) = task {
                                let key = opts
                                    .memo
                                    .is_some()
                                    .then(|| memo_key_for(&task, opts, memo_salt));
                                let figure = task.figure;
                                let r = run_task(task, opts);
                                journal_append(journal, figure, r.1, &r.2, &r.3);
                                memo_fill(memo, key, figure, r.1, &r.2, &r.3);
                                out.push(r);
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_default())
                .collect()
        })
    };
    done.extend(executed);
    // The report serializes the typed error's stable rendering; its `kind()`
    // tag ("journal") prefixes it so downstream tooling can dispatch without
    // string-matching the message.
    let journal_error = journal
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .error
        .map(|e| format!("{}: {e}", e.kind()));

    // Scatter outcomes back into declaration order.
    let mut per_plan: Vec<Vec<Option<CellOutcome>>> =
        shapes.iter().map(|(n, _, _)| vec![None; *n]).collect();
    // Stats sort by (plan, cell), i.e. declaration order, so the report is
    // itself deterministic up to the measured wall times.
    done.sort_by_key(|(p, c, _, _)| (*p, *c));
    let mut stats: Vec<CellStat> = Vec::with_capacity(n_tasks);
    for (plan_idx, cell_idx, outcome, stat) in done {
        per_plan[plan_idx][cell_idx] = Some(outcome);
        stats.push(stat);
    }

    // Merge, in plan declaration order.
    let mut figures = Vec::with_capacity(shapes.len());
    for ((_, figure, merge), outcomes) in shapes.into_iter().zip(per_plan) {
        let cells: Vec<CellOutcome> = outcomes
            .into_iter()
            .enumerate()
            .map(|(i, o)| {
                o.unwrap_or(CellOutcome {
                    label: format!("{figure}#{i}"),
                    result: Err("cell was never executed (worker died)".to_string()),
                })
            })
            .collect();
        figures.push(merge(&Outcomes { cells: &cells }));
    }

    let report = SweepReport {
        jobs,
        seed,
        wall_ns: total_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        cells: stats,
        resumed_cells,
        memo_hits,
        journal_error,
        extra_aggregates: Vec::new(),
    };
    (figures, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_plan(label: &'static str) -> SweepPlan {
        let mut b = PlanBuilder::new(label);
        let mut ids = Vec::new();
        for i in 0..5u64 {
            ids.push(b.cell(format!("cell{i}"), move |rng| CellData::Rows {
                rows: vec![Row::new(format!("cell{i}"), vec![rng.next_u64() as f64])],
                sim_cycles: i,
            }));
        }
        b.merge(move |o| {
            let mut fig = Figure::new(label, "toy", vec!["v"]);
            for &i in &ids {
                if let Some(rows) = o.rows(i) {
                    fig.rows.extend(rows.iter().cloned());
                }
            }
            o.annotate_failures(&mut fig);
            fig
        })
    }

    #[test]
    fn serial_and_parallel_runs_are_byte_identical() {
        let (serial, _) = run_plans(vec![toy_plan("a"), toy_plan("b")], 1, 42);
        let (par, _) = run_plans(vec![toy_plan("a"), toy_plan("b")], 4, 42);
        let s: Vec<String> = serial.iter().map(Figure::to_json).collect();
        let p: Vec<String> = par.iter().map(Figure::to_json).collect();
        assert_eq!(s, p);
        // Different figures get different streams even at equal cell index.
        assert_ne!(serial[0].rows[0].values, serial[1].rows[0].values);
    }

    #[test]
    fn closed_loop_cells_mine_then_replay_in_one_cell() {
        use aff_sim_core::mine::RegionKind;
        use aff_sim_core::trace::{Event, Recorder};
        let mut b = PlanBuilder::new("loop");
        let id = b.closed_loop_cell(
            "cell",
            |_rng| {
                // The profiling phase sees a fresh thread-local miner.
                assert!(mine::thread_miner_installed());
                mine::register_region(0, RegionKind::Array, 4, 16);
                let mut rec = mine::ThreadMinerRecorder;
                for i in 0..8u64 {
                    rec.record(&Event::ProfileTouch { region: 0, elem: i, step: i });
                }
            },
            |_rng, trace| CellData::Rows {
                rows: vec![Row::new("mined", vec![trace.touch_events as f64])],
                sim_cycles: 0,
            },
        );
        let plan = b.merge(move |o| {
            let mut fig = Figure::new("loop", "closed loop", vec!["touches"]);
            if let Some(rows) = o.rows(id) {
                fig.rows.extend(rows.iter().cloned());
            }
            o.annotate_failures(&mut fig);
            fig
        });
        let (figs, _) = run_plans(vec![plan], 1, 7);
        assert_eq!(figs[0].rows[0].values, vec![8.0]);
        // jobs = 1 ran the cell inline on this thread: the miner must be gone.
        assert!(!mine::thread_miner_installed());
    }

    #[test]
    fn closed_loop_profile_panic_fails_soft_and_uninstalls_the_miner() {
        let mut b = PlanBuilder::new("loop-panic");
        let id = b.closed_loop_cell(
            "cell",
            |_rng| panic!("profiling phase exploded"),
            |_rng, _trace| CellData::Rows {
                rows: vec![Row::new("unreached", vec![1.0])],
                sim_cycles: 0,
            },
        );
        let plan = b.merge(move |o| {
            let mut fig = Figure::new("loop-panic", "closed loop", vec!["v"]);
            assert!(o.rows(id).is_none(), "panicked cell must yield no data");
            o.annotate_failures(&mut fig);
            fig
        });
        let (figs, report) = run_plans(vec![plan], 1, 7);
        // Fail-soft: the panic became a cell-level error, not an abort …
        assert!(report.cells[0].error.as_deref().is_some_and(|e| e.contains("exploded")));
        assert!(figs[0].notes.iter().any(|n| n.contains("exploded")));
        // … and the miner did not leak onto the (reused) executing thread.
        assert!(!mine::thread_miner_installed());
    }

    #[test]
    fn stale_journal_wall_hints_seed_stealing_without_changing_bytes() {
        // A journal from a *different* experiment (other seed/context) at the
        // journal path: its wall times may seed the scheduler, but output
        // bytes must match a hint-less serial run and every cell must run
        // fresh (the stale journal is not resumed from).
        let dir = std::env::temp_dir().join("aff-sweep-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(format!("hints-{}.journal", std::process::id()));
        let mut w = JournalWriter::create(&path, 777, 888).expect("create");
        for (i, wall) in [(0u64, 5u64), (1, 500_000_000), (2, 10), (3, 7), (4, 100)] {
            w.append(&JournalEntry {
                figure: "a".into(),
                cell_idx: i,
                label: format!("cell{i}"),
                attempts: 1,
                wall_ns: wall,
                result: Err("stale".into()),
            })
            .expect("append");
        }
        drop(w);
        let (serial, _) = run_plans(vec![toy_plan("a"), toy_plan("b")], 1, 42);
        let opts = RunOpts {
            journal: Some(path.clone()),
            ..RunOpts::new(3, 42)
        };
        let (hinted, report) = run_plans_opts(vec![toy_plan("a"), toy_plan("b")], &opts);
        let s: Vec<String> = serial.iter().map(Figure::to_json).collect();
        let h: Vec<String> = hinted.iter().map(Figure::to_json).collect();
        assert_eq!(s, h);
        assert_eq!(report.resumed_cells, 0, "stale journal must not resume");
        assert!(report.cells.iter().all(|c| !c.cached));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memo_warm_run_replays_bytes_without_executing() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let dir = std::env::temp_dir().join("aff-sweep-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(format!("memo-{}.memo", std::process::id()));
        std::fs::remove_file(&path).ok();
        let executions = Arc::new(AtomicU32::new(0));
        let plan = |ex: &Arc<AtomicU32>| {
            let mut b = PlanBuilder::new("m");
            let mut ids = Vec::new();
            for i in 0..4u64 {
                let ex = Arc::clone(ex);
                ids.push(b.cell(format!("cell{i}"), move |rng| {
                    ex.fetch_add(1, Ordering::SeqCst);
                    CellData::Rows {
                        rows: vec![Row::new(format!("cell{i}"), vec![rng.next_u64() as f64])],
                        sim_cycles: i + 1,
                    }
                }));
            }
            b.merge(move |o| {
                let mut fig = Figure::new("m", "memo", vec!["v"]);
                for &i in &ids {
                    if let Some(rows) = o.rows(i) {
                        fig.rows.extend(rows.iter().cloned());
                    }
                }
                o.annotate_failures(&mut fig);
                fig
            })
        };
        let opts = RunOpts {
            memo: Some(path.clone()),
            memo_config: 77,
            ..RunOpts::new(2, 42)
        };
        let (cold, cold_report) = run_plans_opts(vec![plan(&executions)], &opts);
        assert_eq!(executions.load(Ordering::SeqCst), 4);
        assert_eq!(cold_report.memo_hits, 0);
        // Warm run: every cell replays from the store, byte-identically.
        let (warm, warm_report) = run_plans_opts(vec![plan(&executions)], &opts);
        assert_eq!(executions.load(Ordering::SeqCst), 4, "no cell re-ran");
        assert_eq!(warm_report.memo_hits, 4);
        assert!(warm_report.cells.iter().all(|c| c.cached && c.ok));
        assert_eq!(cold[0].to_json(), warm[0].to_json());
        // A different config (scale/geometry/tenants) or seed must miss.
        for changed in [
            RunOpts {
                memo: Some(path.clone()),
                memo_config: 78,
                ..RunOpts::new(2, 42)
            },
            RunOpts {
                memo: Some(path.clone()),
                memo_config: 77,
                ..RunOpts::new(2, 43)
            },
        ] {
            let before = executions.load(Ordering::SeqCst);
            let (_, r) = run_plans_opts(vec![plan(&executions)], &changed);
            assert_eq!(r.memo_hits, 0);
            assert_eq!(executions.load(Ordering::SeqCst), before + 4);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn panicking_cell_fails_soft() {
        let mut b = PlanBuilder::new("boom");
        let ok = b.cell("fine", |_| CellData::Rows {
            rows: vec![Row::new("fine", vec![1.0])],
            sim_cycles: 7,
        });
        let bad = b.cell("broken", |_| -> CellData { panic!("injected cell failure") });
        let plan = b.merge(move |o| {
            let mut fig = Figure::new("boom", "fail soft", vec!["v"]);
            assert!(o.rows(ok).is_some());
            assert!(o.rows(bad).is_none());
            fig.push("broken", vec![o.field(bad, |m| m.noc_utilization)]);
            o.annotate_failures(&mut fig);
            fig
        });
        let (figs, report) = run_plans(vec![plan], 4, 1);
        assert!(figs[0].rows[0].values[0].is_nan());
        assert!(figs[0].notes.iter().any(|n| n.contains("injected cell failure")));
        let broken = &report.cells[1];
        assert!(!broken.ok);
        assert_eq!(report.cells[0].sim_cycles, 7);
    }

    #[test]
    fn unwritable_journal_degrades_to_journal_less_execution() {
        // A journal path that is a directory makes `create` fail with a real
        // I/O error — the same shape as ENOSPC/EIO mid-sweep. The sweep must
        // still compute every figure, with the typed journal error recorded.
        let dir = std::env::temp_dir().join("aff_sweep_journal_is_a_dir");
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        let opts = RunOpts {
            journal: Some(dir.clone()),
            ..RunOpts::new(2, 42)
        };
        let (figs, report) = run_plans_opts(vec![toy_plan("a")], &opts);
        let (clean, _) = run_plans(vec![toy_plan("a")], 2, 42);
        assert_eq!(figs[0].to_json(), clean[0].to_json(), "results unaffected");
        assert!(report.cells.iter().all(|c| c.ok));
        let err = report.journal_error.expect("degrade recorded");
        assert!(err.starts_with("journal: "), "typed kind() prefix: {err}");
        assert!(err.contains("journal create failed"), "{err}");
        assert!(err.contains("continuing without checkpoints"), "{err}");
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn report_follows_declaration_order() {
        let (_, report) = run_plans(vec![toy_plan("x"), toy_plan("y")], 3, 9);
        let labels: Vec<&str> = report
            .cells
            .iter()
            .map(|c| c.label.as_str())
            .collect();
        assert_eq!(
            labels,
            vec![
                "cell0", "cell1", "cell2", "cell3", "cell4", "cell0", "cell1", "cell2", "cell3",
                "cell4"
            ]
        );
        assert_eq!(report.cells[0].figure, "x");
        assert_eq!(report.cells[5].figure, "y");
        assert_eq!(report.jobs, 3);
    }

    #[test]
    fn retries_rerun_flaky_cells_on_reseeded_streams() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let calls = Arc::new(AtomicU32::new(0));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let (c, s) = (Arc::clone(&calls), Arc::clone(&seen));
        let mut b = PlanBuilder::new("flaky");
        b.cell("flaky", move |rng| {
            let draw = rng.next_u64();
            s.lock().expect("seen").push(draw);
            if c.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("flaky failure");
            }
            CellData::Rows {
                rows: vec![Row::new("v", vec![draw as f64])],
                sim_cycles: 1,
            }
        });
        let plan = b.merge(|o| {
            let mut fig = Figure::new("flaky", "t", vec!["v"]);
            o.annotate_failures(&mut fig);
            fig
        });
        let opts = RunOpts {
            max_retries: 3,
            ..RunOpts::new(1, 5)
        };
        let (_, report) = run_plans_opts(vec![plan], &opts);
        assert!(report.cells[0].ok);
        assert_eq!(report.cells[0].attempts, 3);
        // Each attempt drew from a distinct deterministic stream.
        let draws = seen.lock().expect("seen").clone();
        assert_eq!(draws.len(), 3);
        assert_ne!(draws[0], draws[1]);
        assert_ne!(draws[1], draws[2]);
    }

    #[test]
    fn exhausted_retries_report_the_final_error() {
        let mut b = PlanBuilder::new("hopeless");
        b.cell("hopeless", |_| -> CellData { panic!("always broken") });
        let plan = b.merge(|o| {
            let mut fig = Figure::new("hopeless", "t", vec!["v"]);
            o.annotate_failures(&mut fig);
            fig
        });
        let opts = RunOpts {
            max_retries: 2,
            ..RunOpts::new(1, 5)
        };
        let (_, report) = run_plans_opts(vec![plan], &opts);
        assert!(!report.cells[0].ok);
        assert_eq!(report.cells[0].attempts, 3);
        assert!(report.cells[0]
            .error
            .as_deref()
            .is_some_and(|e| e.contains("always broken")));
    }

    #[test]
    fn timeout_abandons_hung_cells() {
        let mut b = PlanBuilder::new("hang");
        b.cell("hung", |_| {
            std::thread::sleep(std::time::Duration::from_secs(30));
            CellData::Rows {
                rows: vec![],
                sim_cycles: 0,
            }
        });
        let quick = b.cell("quick", |_| CellData::Rows {
            rows: vec![Row::new("ok", vec![1.0])],
            sim_cycles: 3,
        });
        let plan = b.merge(move |o| {
            let mut fig = Figure::new("hang", "t", vec!["v"]);
            assert!(o.rows(quick).is_some());
            o.annotate_failures(&mut fig);
            fig
        });
        let opts = RunOpts {
            cell_timeout_ms: Some(50),
            ..RunOpts::new(2, 5)
        };
        let start = Instant::now();
        let (_, report) = run_plans_opts(vec![plan], &opts);
        assert!(start.elapsed() < std::time::Duration::from_secs(10));
        assert!(!report.cells[0].ok);
        assert!(report.cells[0]
            .error
            .as_deref()
            .is_some_and(|e| e.contains("timeout: cell exceeded 50 ms")));
        assert!(report.cells[0].budget_limited());
        assert!(report.cells[1].ok);
    }

    #[test]
    fn metrics_sidecar_is_collected_only_when_asked() {
        fn plan() -> SweepPlan {
            let mut b = PlanBuilder::new("sidecar");
            b.cell("engine", |_| {
                let mut e = aff_nsc::engine::SimEngine::new(
                    aff_sim_core::config::MachineConfig::tiny_mesh(),
                );
                e.core_read_lines(0, 1, 4);
                e.try_finish().expect("unlimited budget").into()
            });
            b.cell("table", |_| CellData::Rows {
                rows: vec![Row::new("r", vec![1.0])],
                sim_cycles: 0,
            });
            b.merge(|o| {
                let mut fig = Figure::new("sidecar", "t", vec!["v"]);
                o.annotate_failures(&mut fig);
                fig
            })
        }
        let (_, without) = run_plans_opts(vec![plan()], &RunOpts::new(1, 7));
        assert!(without.cells.iter().all(|c| c.metrics.is_none()));

        let opts = RunOpts {
            collect_metrics: true,
            ..RunOpts::new(1, 7)
        };
        let (_, with) = run_plans_opts(vec![plan()], &opts);
        let m = with.cells[0].metrics.as_ref().expect("engine cell sidecar");
        assert!(m.total_hop_flits > 0);
        assert_eq!(m.cycles, with.cells[0].sim_cycles);
        // Table-style cells have no engine metrics to record.
        assert!(with.cells[1].metrics.is_none());
    }

    fn engine_plan(figure: &'static str) -> SweepPlan {
        let mut b = PlanBuilder::new(figure);
        let mut ids = Vec::new();
        for i in 0..3u64 {
            ids.push(b.cell(format!("cell{i}"), move |_| {
                let mut e = aff_nsc::engine::SimEngine::new(MachineConfig::paper_default());
                e.begin_phase();
                e.register_resident((i % 4) as u32 * 9, 1 << 16);
                e.bank_read_lines((i % 4) as u32 * 9, 200 + i);
                e.remote_atomic(0, 9, 50);
                e.end_phase();
                e.try_finish().expect("unlimited budget").into()
            }));
        }
        b.merge(move |o| {
            let mut fig = Figure::new(figure, "chaos determinism", vec!["cycles", "flits", "epochs"]);
            for &i in &ids {
                fig.push(
                    format!("cell{i}"),
                    vec![
                        o.field(i, |m| m.cycles as f64),
                        o.field(i, |m| m.total_hop_flits as f64),
                        o.field(i, |m| m.degradation.fault_epochs as f64),
                    ],
                );
            }
            o.annotate_failures(&mut fig);
            fig
        })
    }

    #[test]
    fn chaos_runs_are_deterministic_across_job_counts() {
        let run = |jobs| {
            let opts = RunOpts {
                chaos: Some(7),
                chaos_intensity: 6,
                ..RunOpts::new(jobs, 42)
            };
            let (figs, report) = run_plans_opts(vec![engine_plan("chaos")], &opts);
            assert!(report.cells.iter().all(|c| c.ok), "{:?}", report.cells);
            figs[0].to_json()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn chaos_timeline_reaches_the_engine_and_passes_invariants() {
        use aff_sim_core::fault::FaultChange;
        // A hand-made cycle-0 bank death: the engine must adopt it from the
        // thread-local install, log the transition, and the chaos invariant
        // checks must accept the result.
        let tl = FaultTimeline::none().at(0, FaultChange::BankFail(9));
        let job: CellJob = Arc::new(|_rng: &mut SimRng| {
            let mut e = aff_nsc::engine::SimEngine::new(MachineConfig::paper_default());
            e.bank_read_lines(9, 100);
            e.try_finish().expect("unlimited budget").into()
        });
        let data = run_attempt(&job, 1, 2, Some(tl.clone())).expect("chaos cell runs clean");
        let m = data.metrics().expect("engine cell");
        assert_eq!(m.transitions, tl.events());
        assert_eq!(m.degradation.fault_epochs, 1);
        // The install is scoped to the attempt: nothing leaks to this thread.
        assert!(!fault::thread_chaos_installed());
    }

    #[test]
    fn chaos_invariant_violation_fails_the_cell_soft() {
        let mut b = PlanBuilder::new("doctored");
        b.cell("doctored", |_| {
            let mut e = aff_nsc::engine::SimEngine::new(MachineConfig::paper_default());
            e.remote_atomic(0, 9, 10);
            let mut m = e.try_finish().expect("unlimited budget");
            m.total_hop_flits += 1; // break flit conservation
            m.into()
        });
        let plan = b.merge(|o| {
            let mut fig = Figure::new("doctored", "t", vec!["v"]);
            o.annotate_failures(&mut fig);
            fig
        });
        let opts = RunOpts {
            chaos: Some(3),
            ..RunOpts::new(1, 5)
        };
        let (figs, report) = run_plans_opts(vec![plan], &opts);
        assert!(!report.cells[0].ok);
        assert!(report.cells[0]
            .error
            .as_deref()
            .is_some_and(|e| e.contains("chaos invariant violated")));
        assert!(figs[0].notes.iter().any(|n| n.contains("flit conservation")));
    }

    #[test]
    fn stream_ids_are_distinct_across_figures_and_cells() {
        let mut seen = std::collections::BTreeSet::new();
        for f in ["fig4", "fig6", "fig12", "fig13"] {
            for i in 0..128 {
                assert!(seen.insert(stream_id(f, i)), "collision at {f}/{i}");
            }
        }
    }
}

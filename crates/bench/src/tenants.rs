//! Multi-tenant churn driver: the workload behind the `tenants` figure
//! family, the multi-tenant integration tests, and the CI `tenant-smoke`
//! job.
//!
//! One [`ChurnSpec`] describes a deterministic interleaved alloc/free storm
//! over an [`AllocService`]: `tenants` tenants with disjoint bank
//! partitions, each driving `ops_per_tenant` operations from its *own*
//! `SimRng` stream. Because every tenant's op sequence is a pure function
//! of `(seed, tenant)` — never of another tenant's progress — the same
//! tenant replays the identical sequence whether it runs alone or amid
//! `n − 1` noisy neighbors. That is what lets [`isolation_digests`] state
//! the headline invariant as an equality of two `u64`s:
//!
//! > tenant B's output digest in a multi-tenant run with faults injected
//! > into tenant A's banks == B's digest running solo, unfaulted.
//!
//! The solo baseline keeps all registrations (so B holds the *same* bank
//! partition) but drives only B and injects nothing. RNG draws happen
//! before the "is this tenant driven?" check, so the streams stay aligned.

use aff_nsc::engine::{Metrics, SimEngine};
use aff_sim_core::config::MachineConfig;
use aff_sim_core::fault::FaultChange;
use aff_sim_core::rng::SimRng;
use aff_sim_core::tenant::{jain_fairness, TenantId, TenantSpec, TenantUsage};
use aff_sim_core::trace::{Event, TrafficKind};
use affinity_alloc::service::{AllocService, ServiceConfig};
use affinity_alloc::{AffineArrayReq, AllocError};

/// Stream-id namespace for per-tenant churn drivers (distinct from figure
/// cells and the backoff jitter namespace).
const CHURN_STREAM: u64 = 0x7e4a_7e4a_0000_0000;

/// One deterministic multi-tenant churn experiment.
#[derive(Debug, Clone)]
pub struct ChurnSpec {
    /// The machine the service fronts.
    pub machine: MachineConfig,
    /// Tenant count (each gets `num_banks / tenants` banks).
    pub tenants: u32,
    /// Operations each tenant drives.
    pub ops_per_tenant: u64,
    /// Experiment seed (service seed and all driver streams derive from it).
    pub seed: u64,
    /// Admission window override `(ops, capacity, headroom)`; `None` keeps
    /// the never-shedding `paper_default` window.
    pub window: Option<(u64, u64, u64)>,
    /// Per-tenant byte-quota override; `None` grants each tenant its full
    /// partition capacity.
    pub quota_bytes: Option<u64>,
    /// Fault schedule: at tenant-op index `k`, inject the change. Skipped
    /// in solo-baseline runs.
    pub faults: Vec<(u64, FaultChange)>,
    /// Drive only this tenant (all tenants stay *registered*, so partitions
    /// are identical) — the solo baseline of the isolation invariant.
    pub solo: Option<u32>,
    /// Route allocations through the deterministic retry/backoff wrapper
    /// instead of surfacing `Overloaded` directly.
    pub retry: bool,
    /// Free every live object at the end and run a tail reclaim — the
    /// "churn must drain to zero fragmentation" configuration.
    pub drain: bool,
}

impl ChurnSpec {
    /// A never-shedding, unfaulted churn of `ops` operations per tenant on
    /// the paper machine.
    pub fn new(tenants: u32, ops: u64, seed: u64) -> Self {
        Self {
            machine: MachineConfig::paper_default(),
            tenants,
            ops_per_tenant: ops,
            seed,
            window: None,
            quota_bytes: None,
            faults: Vec::new(),
            solo: None,
            retry: false,
            drain: false,
        }
    }
}

/// What one churn run produced.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Per-tenant service counters (admission, quota, shed, residency).
    pub usage: Vec<TenantUsage>,
    /// Service-wide free-listed fraction of claimed pool space at the end.
    pub fragmentation_ratio: f64,
    /// Jain fairness index over per-tenant admitted counts (driven tenants
    /// only).
    pub jain: f64,
    /// Total requests shed, all tenants.
    pub shed_total: u64,
    /// Per-tenant output digests (placements + rejections folded to one
    /// `u64` each) — the isolation invariant's unit of comparison.
    pub digests: Vec<u64>,
    /// Ground-truth resident bytes summed over every shard allocator.
    pub resident_truth: u64,
    /// Sum of the per-tenant service ledgers (conservation: == truth).
    pub resident_ledger: u64,
    /// Operations actually attempted (admitted + rejected).
    pub ops_attempted: u64,
}

/// Run one churn experiment.
///
/// # Panics
///
/// Panics on allocator errors that are neither `Overloaded` nor
/// `QuotaExceeded` — in a sweep cell that surfaces as a soft cell failure,
/// in a test as a failure.
pub fn run_churn(spec: &ChurnSpec) -> ChurnOutcome {
    let banks = spec.machine.num_banks();
    let tenants = spec.tenants.max(1).min(banks);
    let per = banks / tenants;
    let mut cfg = ServiceConfig {
        machine: spec.machine.clone(),
        seed: spec.seed,
        ..ServiceConfig::paper_default()
    };
    if let Some((ops, cap, headroom)) = spec.window {
        cfg = cfg.window(ops, cap, headroom);
    }
    let svc = AllocService::new(cfg);
    let quota = spec
        .quota_bytes
        .unwrap_or(u64::from(per) * spec.machine.l3_bank_bytes);
    let mut ids = Vec::new();
    for t in 0..tenants {
        // Alternating priorities so overload cells can show
        // lowest-priority-first shedding.
        let s = TenantSpec::new(format!("t{t}"), quota, per).priority((t % 2) as u8);
        ids.push(svc.register(s).expect("bank pool covers all tenants"));
    }

    let mut rngs: Vec<SimRng> = (0..tenants)
        .map(|t| SimRng::split(spec.seed, CHURN_STREAM ^ u64::from(t)))
        .collect();
    let mut live: Vec<Vec<aff_mem::addr::VAddr>> =
        (0..tenants).map(|_| Vec::new()).collect();
    let mut ops_attempted = 0u64;

    for k in 0..spec.ops_per_tenant {
        if spec.solo.is_none() {
            for (at, change) in &spec.faults {
                if *at == k {
                    svc.inject_fault(*change);
                }
            }
        }
        for t in 0..tenants {
            let rng = &mut rngs[t as usize];
            // Draw BEFORE the driven check so undriven tenants consume the
            // same stream prefix and solo replays stay aligned.
            let roll = rng.below(100);
            let size = 64u64 << rng.below(4);
            if spec.solo.is_some_and(|s| s != t) {
                continue;
            }
            ops_attempted += 1;
            let id = ids[t as usize];
            let mine = &mut live[t as usize];
            if roll < 40 && !mine.is_empty() {
                let i = rng.index(mine.len());
                let va = mine.swap_remove(i);
                svc.free_aff(id, va).expect("free of a live address");
            } else if roll >= 90 {
                let req = AffineArrayReq::new(8, size);
                match svc.malloc_aff_affine(id, &req) {
                    Ok(va) => mine.push(va),
                    Err(AllocError::Overloaded { .. } | AllocError::QuotaExceeded { .. }) => {}
                    Err(e) => panic!("churn affine alloc failed: {e}"),
                }
            } else {
                let aff: Vec<aff_mem::addr::VAddr> = mine.last().copied().into_iter().collect();
                let res = if spec.retry {
                    svc.malloc_aff_with_retry(id, size, &aff).map(|(va, _)| va)
                } else {
                    svc.malloc_aff(id, size, &aff)
                };
                match res {
                    Ok(va) => mine.push(va),
                    Err(AllocError::Overloaded { .. } | AllocError::QuotaExceeded { .. }) => {}
                    Err(e) => panic!("churn alloc failed: {e}"),
                }
            }
        }
    }

    if spec.drain {
        for (t, mine) in live.iter_mut().enumerate() {
            for va in mine.drain(..) {
                svc.free_aff(ids[t], va).expect("drain free");
            }
        }
        svc.reclaim();
    }

    let usage = svc.usage();
    let admitted: Vec<u64> = usage
        .iter()
        .filter(|u| spec.solo.is_none_or(|s| s == u.tenant))
        .map(|u| u.admitted)
        .collect();
    let digests: Vec<u64> = ids
        .iter()
        .map(|&id| svc.digest(id).expect("registered tenant"))
        .collect();
    ChurnOutcome {
        fragmentation_ratio: svc.fragmentation().fragmentation_ratio(),
        jain: jain_fairness(&admitted),
        shed_total: svc.shed_total(),
        digests,
        resident_truth: svc.global_resident_truth(),
        resident_ledger: svc.global_resident_ledger(),
        ops_attempted,
        usage,
    }
}

/// The isolation invariant's two digests for `observer`: its digest in the
/// full multi-tenant run of `spec` (faults included), and its digest
/// running solo with no faults. Equal ⇔ the invariant holds.
pub fn isolation_digests(spec: &ChurnSpec, observer: u32) -> (u64, u64) {
    let multi = run_churn(spec);
    let solo_spec = ChurnSpec {
        solo: Some(observer),
        faults: Vec::new(),
        ..spec.clone()
    };
    let solo = run_churn(&solo_spec);
    (
        multi.digests[observer as usize],
        solo.digests[observer as usize],
    )
}

/// Render a churn outcome as engine [`Metrics`] so the `--metrics` sidecar
/// carries the per-tenant record: replays each tenant's admitted work into
/// a [`SimEngine`] under `set_tenant` (exercising the attribution path),
/// then merges the service counters into the attributed rows and installs
/// the service's fragmentation ratio.
pub fn churn_metrics(machine: &MachineConfig, out: &ChurnOutcome) -> Metrics {
    let mut eng = SimEngine::new(machine.clone());
    let banks = machine.num_banks();
    for u in &out.usage {
        eng.set_tenant(Some(TenantId(u.tenant)));
        eng.record(Event::CoreOps { count: u.admitted });
        eng.record(Event::Traffic {
            src: u.tenant % banks,
            dst: (u.tenant + 1) % banks,
            payload_bytes: 64,
            class: TrafficKind::Data,
            count: u.admitted,
        });
        eng.record(Event::BankAccess {
            bank: u.tenant % banks,
            count: u.admitted,
            fetch: false,
        });
    }
    eng.set_tenant(None);
    let mut m = eng.try_finish().expect("replay stays within budget");
    m.fragmentation_ratio = out.fragmentation_ratio;
    for u in &out.usage {
        match m.tenants.iter_mut().find(|r| r.tenant == u.tenant) {
            Some(row) => {
                // Keep the engine's attribution half, take the service half
                // from the churn outcome.
                let (se, core, msgs, dram) =
                    (row.se_ops, row.core_ops, row.traffic_msgs, row.dram_lines);
                *row = u.clone();
                row.se_ops = se;
                row.core_ops = core;
                row.traffic_msgs = msgs;
                row.dram_lines = dram;
            }
            None => m.tenants.push(u.clone()),
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_is_deterministic() {
        let spec = ChurnSpec::new(4, 200, 7);
        let a = run_churn(&spec);
        let b = run_churn(&spec);
        assert_eq!(a.digests, b.digests);
        assert_eq!(a.resident_truth, b.resident_truth);
        assert_eq!(a.usage, b.usage);
    }

    #[test]
    fn conservation_holds() {
        let out = run_churn(&ChurnSpec::new(4, 500, 11));
        assert_eq!(out.resident_truth, out.resident_ledger);
        let per_tenant: u64 = out.usage.iter().map(|u| u.resident_bytes).sum();
        assert_eq!(per_tenant, out.resident_truth);
    }

    #[test]
    fn drain_reaches_zero_fragmentation() {
        let spec = ChurnSpec {
            drain: true,
            ..ChurnSpec::new(2, 400, 13)
        };
        let out = run_churn(&spec);
        assert_eq!(out.resident_truth, 0, "drain left residency behind");
        assert_eq!(
            out.fragmentation_ratio, 0.0,
            "coalescing + tail reclaim must return a drained pool to 0"
        );
    }

    #[test]
    fn isolation_digests_agree_under_victim_faults() {
        let mut spec = ChurnSpec::new(4, 300, 17);
        // Tenant 0 owns banks [0, 16); kill two of them mid-run.
        spec.faults = vec![(100, FaultChange::BankFail(1)), (200, FaultChange::BankFail(5))];
        let (multi, solo) = isolation_digests(&spec, 2);
        assert_eq!(multi, solo, "faults in t0's banks leaked into t2's output");
    }

    #[test]
    fn churn_metrics_carries_the_tenant_record() {
        let machine = MachineConfig::paper_default();
        let out = run_churn(&ChurnSpec::new(3, 100, 19));
        let m = churn_metrics(&machine, &out);
        assert_eq!(m.tenants.len(), 3);
        assert!(m.tenants.iter().all(|u| u.core_ops == u.admitted));
        assert!(m.tenants.iter().any(|u| u.admitted > 0));
        assert!((m.fragmentation_ratio - out.fragmentation_ratio).abs() < f64::EPSILON);
    }
}

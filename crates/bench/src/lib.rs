//! The evaluation harness: one reproduction function per figure of the
//! paper, shared by the `figures` binary and the Criterion benches.
//!
//! Each `figN` function in [`figures`] runs the simulated experiments and
//! returns a [`report::Figure`] — labeled rows of named series — which
//! renders to the same table/series the paper plots. EXPERIMENTS.md records
//! the paper-vs-measured comparison produced by `cargo run --release -p
//! aff-bench --bin figures -- all`.

pub mod figures;
pub mod inference;
pub mod journal;
pub mod memo;
pub mod report;
pub mod sweep;
pub mod tenants;

pub use report::{CellStat, Figure, Row, SweepReport};
pub use sweep::{run_plans, run_plans_opts, RunOpts, SweepPlan};

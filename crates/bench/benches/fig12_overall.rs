//! Fig 12 regeneration + timing: the whole Table 3 suite under In-Core /
//! Near-L3 / Aff-Alloc — the paper's headline table.

use aff_bench::figures::{fig12, HarnessOpts};
use aff_workloads::config::{RunConfig, SystemConfig};
use aff_workloads::suite::{self, WorkloadName};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", fig12(HarnessOpts::default()).render());
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    for system in [
        SystemConfig::InCore,
        SystemConfig::NearL3,
        SystemConfig::aff_alloc_default(),
    ] {
        g.bench_function(format!("pr_{}", system.label()), move |b| {
            let cfg = RunConfig::new(system);
            b.iter(|| suite::run(WorkloadName::Pr, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

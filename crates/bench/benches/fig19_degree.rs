//! Fig 19 regeneration + timing: speedup vs average node degree on
//! fixed-|E| power-law graphs.

use aff_bench::figures::{fig19, HarnessOpts};
use aff_workloads::config::{RunConfig, SystemConfig};
use aff_workloads::gen;
use aff_workloads::graphs::GraphInstance;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", fig19(HarnessOpts::default()).render());
    let mut g = c.benchmark_group("fig19");
    g.sample_size(10);
    for degree in [4u32, 128] {
        let edges = 1usize << 17;
        let graph = gen::power_law((edges as u32 / degree).max(64), edges, 0.8, 5);
        g.bench_function(format!("pr_push_D{degree}"), move |b| {
            let cfg = RunConfig::new(SystemConfig::aff_alloc_default());
            b.iter(|| GraphInstance::new(graph.clone(), &cfg).run_pr_push())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation: FIFO frontier vs spatially distributed priority queue for
//! SSSP (§4.2's MultiQueues suggestion). The relaxed Dijkstra settles each
//! vertex ~once (fewer edge relaxations than the label-correcting FIFO),
//! and under Aff-Alloc its queue operations are bank-local.

use aff_workloads::config::{RunConfig, SystemConfig};
use aff_workloads::graphs::{pick_source, GraphInstance};
use aff_workloads::suite::kron_weighted_input;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let graph = kron_weighted_input(1, 2023);
    let src = pick_source(&graph);
    println!("== abl_priority_queue: sssp frontier structure ==");
    println!(
        "{:>26} {:>12} {:>14} {:>16}",
        "config", "cycles", "flit-hops", "edges examined"
    );
    for (label, system, pq) in [
        ("Near-L3 / FIFO", SystemConfig::NearL3, false),
        ("Near-L3 / global heap", SystemConfig::NearL3, true),
        ("Aff-Alloc / FIFO", SystemConfig::aff_alloc_default(), false),
        ("Aff-Alloc / spatial PQ", SystemConfig::aff_alloc_default(), true),
    ] {
        let cfg = RunConfig::new(system);
        let inst = GraphInstance::new(graph.clone(), &cfg);
        let run = if pq {
            inst.run_sssp_priority(src)
        } else {
            inst.run_sssp(src)
        };
        println!(
            "{label:>26} {:>12} {:>14} {:>16}",
            run.metrics.cycles,
            run.metrics.total_hop_flits,
            run.iters.iter().map(|i| i.examined_edges).sum::<u64>(),
        );
    }
    let mut g = c.benchmark_group("abl_priority_queue");
    g.sample_size(10);
    for pq in [false, true] {
        let graph = graph.clone();
        g.bench_function(if pq { "spatial_pq" } else { "fifo" }, move |b| {
            let cfg = RunConfig::new(SystemConfig::aff_alloc_default());
            b.iter(|| {
                let inst = GraphInstance::new(graph.clone(), &cfg);
                if pq {
                    inst.run_sssp_priority(src)
                } else {
                    inst.run_sssp(src)
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Fig 13 regeneration + timing: bank-select policy sensitivity (Rnd / Lnr /
//! Min-Hop / Hybrid-H) on the irregular workloads.

use aff_bench::figures::{fig13, HarnessOpts};
use aff_workloads::config::{RunConfig, SystemConfig};
use aff_workloads::pointer::{run_bin_tree, BinTreeParams};
use affinity_alloc::BankSelectPolicy;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", fig13(HarnessOpts::default()).render());
    let params = BinTreeParams {
        nodes: 8 * 1024,
        lookups: 32 * 1024,
    };
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    for policy in [
        BankSelectPolicy::Rnd,
        BankSelectPolicy::MinHop,
        BankSelectPolicy::Hybrid { h: 5.0 },
    ] {
        g.bench_function(format!("bin_tree_{}", policy.label()), move |b| {
            let cfg = RunConfig::new(SystemConfig::AffAlloc(policy));
            b.iter(|| run_bin_tree(params, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

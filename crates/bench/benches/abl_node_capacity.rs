//! Ablation: linked-CSR node capacity (edges per node). Smaller nodes give
//! finer placement but more pointer chasing; the paper's 64 B line (14
//! edges) is the design point. Prints mean indirect hops and node counts
//! per capacity, then times the builds.

use aff_ds::layout::{AllocMode, VertexArray};
use aff_ds::linked_csr::LinkedCsr;
use aff_sim_core::config::MachineConfig;
use aff_workloads::suite::kron_input;
use affinity_alloc::{AffinityAllocator, BankSelectPolicy};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let graph = kron_input(1, 2023);
    println!("== abl_node_capacity: linked CSR node size ablation ==");
    println!("{:>10} {:>12} {:>18}", "edges/node", "nodes", "mean indirect hops");
    for capacity in [2usize, 4, 7, 14, 28] {
        let mut alloc = AffinityAllocator::new(
            MachineConfig::paper_default(),
            BankSelectPolicy::paper_default(),
        );
        let props = VertexArray::new(
            &mut alloc,
            u64::from(graph.num_vertices()),
            8,
            AllocMode::Affinity,
        )
        .expect("props");
        let linked =
            LinkedCsr::build_with_capacity(&mut alloc, &graph, &props, capacity).expect("build");
        println!(
            "{:>10} {:>12} {:>18.3}",
            capacity,
            linked.num_nodes(),
            linked.mean_indirect_hops(alloc.topo(), &graph, &props)
        );
    }
    let mut g = c.benchmark_group("abl_node_capacity");
    g.sample_size(10);
    for capacity in [4usize, 14] {
        let graph = graph.clone();
        g.bench_function(format!("build_cap{capacity}"), move |b| {
            b.iter(|| {
                let mut alloc = AffinityAllocator::new(
                    MachineConfig::paper_default(),
                    BankSelectPolicy::paper_default(),
                );
                let props = VertexArray::new(
                    &mut alloc,
                    u64::from(graph.num_vertices()),
                    8,
                    AllocMode::Affinity,
                )
                .expect("props");
                LinkedCsr::build_with_capacity(&mut alloc, &graph, &props, capacity)
                    .expect("build")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Fig 16 regeneration + timing: linked CSR on growing graphs against a
//! capacity-matched L3.

use aff_bench::figures::{fig16, HarnessOpts};
use aff_workloads::config::{RunConfig, SystemConfig};
use aff_workloads::suite::{self, WorkloadName};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", fig16(HarnessOpts::default()).render());
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    for scale in [1u32, 4] {
        g.bench_function(format!("pr_push_scale{scale}"), move |b| {
            let cfg = RunConfig::new(SystemConfig::aff_alloc_default()).with_scale(scale);
            b.iter(|| suite::run(WorkloadName::PrPush, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

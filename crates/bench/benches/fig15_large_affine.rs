//! Fig 15 regeneration + timing: affine workloads at 1x–8x input, where the
//! working set outgrows the L3 and the NDC advantage collapses.

use aff_bench::figures::{fig15, HarnessOpts};
use aff_workloads::affine::{run_stencil, Stencil};
use aff_workloads::config::{RunConfig, SystemConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", fig15(HarnessOpts::default()).render());
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    for scale in [1u64, 8] {
        g.bench_function(format!("hotspot_{scale}x"), move |b| {
            let cfg = RunConfig::new(SystemConfig::aff_alloc_default());
            let s = Stencil::hotspot(512 * scale, 1024);
            b.iter(|| run_stencil(&s, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation: the In-Core baseline's private-cache reuse filter. Disabling
//! it sends every element access over the NoC — quantifying how much of the
//! baseline's competitiveness the L1/L2 provides (and why a fair NDC
//! comparison must model it).

use aff_workloads::affine::{run_stencil_opts, Stencil};
use aff_workloads::config::{RunConfig, SystemConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = RunConfig::new(SystemConfig::InCore);
    println!("== abl_reuse: In-Core private-cache filter ablation ==");
    for (name, s) in [
        ("pathfinder", Stencil::pathfinder(1_500_000)),
        ("hotspot", Stencil::hotspot(2048, 1024)),
    ] {
        let with = run_stencil_opts(&s, &cfg, true);
        let without = run_stencil_opts(&s, &cfg, false);
        println!(
            "{name:12} filtered: {:>9} cycles / {:>12} flit-hops   unfiltered: {:>9} cycles / {:>13} flit-hops ({:.1}x slower)",
            with.cycles,
            with.total_hop_flits,
            without.cycles,
            without.total_hop_flits,
            without.cycles as f64 / with.cycles as f64,
        );
    }
    let mut g = c.benchmark_group("abl_reuse");
    g.sample_size(10);
    let s = Stencil::hotspot(512, 1024);
    g.bench_function("incore_filtered", |b| {
        b.iter(|| run_stencil_opts(&s, &cfg, true))
    });
    g.bench_function("incore_unfiltered", |b| {
        b.iter(|| run_stencil_opts(&s, &cfg, false))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Fig 4 regeneration + timing: vec-add speedup/traffic vs forced layout
//! offset Δ. Prints the figure's rows, then Criterion-times representative
//! points of the sweep.

use aff_bench::figures::{fig4, HarnessOpts};
use aff_workloads::affine::run_vecadd_forced_delta;
use aff_workloads::config::{RunConfig, SystemConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", fig4(HarnessOpts::default()).render());
    let cfg = RunConfig::new(SystemConfig::NearL3);
    let mut g = c.benchmark_group("fig04");
    g.sample_size(10);
    for delta in [0u32, 32] {
        g.bench_function(format!("vecadd_delta{delta}"), |b| {
            b.iter(|| run_vecadd_forced_delta(200_000, Some(delta), &cfg))
        });
    }
    g.bench_function("vecadd_random", |b| {
        b.iter(|| run_vecadd_forced_delta(200_000, None, &cfg))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

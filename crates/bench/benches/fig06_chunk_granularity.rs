//! Fig 6 regeneration + timing: speedup/traffic of oracle-placed CSR chunks
//! at 4 KiB…64 B granularity versus the Near-L3 baseline.

use aff_bench::figures::{fig6, HarnessOpts};
use aff_workloads::config::{RunConfig, SystemConfig};
use aff_workloads::graphs::GraphInstance;
use aff_workloads::suite::kron_input;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", fig6(HarnessOpts::default()).render());
    let graph = kron_input(1, 2023);
    let mut g = c.benchmark_group("fig06");
    g.sample_size(10);
    for chunk in [4096u64, 64] {
        let graph = graph.clone();
        g.bench_function(format!("pr_push_oracle_{chunk}B"), move |b| {
            let cfg = RunConfig::new(SystemConfig::aff_alloc_default());
            b.iter(|| {
                GraphInstance::with_chunk_oracle(graph.clone(), &cfg, chunk).run_pr_push()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation: bank-numbering order (§4.1 "Other Interleave Patterns").
//!
//! Boustrophedon (snake) numbering makes every consecutive bank pair mesh-
//! adjacent — but it destroys the row-major property that row-multiple
//! offsets (Δ = 8, 16, …) route straight down with no flow overlap, and the
//! sweep's worst cases get *worse*. The ablation empirically supports the
//! paper's conclusion that "a simple 1D linear pattern is expressive
//! enough" (§4.1). Prints the Δ sweep under both orders, then times one
//! run.

use aff_sim_core::config::{BankOrder, MachineConfig};
use aff_workloads::affine::run_vecadd_forced_delta;
use aff_workloads::config::{RunConfig, SystemConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn sweep(order: BankOrder) -> Vec<(u32, u64)> {
    let mut machine = MachineConfig::paper_default();
    machine.bank_order = order;
    let cfg = RunConfig::new(SystemConfig::NearL3).with_machine(machine);
    (0..=64u32)
        .step_by(4)
        .map(|d| (d, run_vecadd_forced_delta(1_500_000, Some(d), &cfg).cycles))
        .collect()
}

fn bench(c: &mut Criterion) {
    println!("== abl_bank_order: vec-add Δ sweep, cycles per bank order ==");
    println!("{:>8} {:>12} {:>12}", "Δ", "row-major", "snake");
    let rm = sweep(BankOrder::RowMajor);
    let sn = sweep(BankOrder::Snake);
    for ((d, a), (_, b)) in rm.iter().zip(&sn) {
        println!("{d:>8} {a:>12} {b:>12}");
    }
    let worst = |v: &[(u32, u64)]| v.iter().map(|&(_, c)| c).max().unwrap_or(0);
    println!(
        "worst-case Δ: row-major {} cycles, snake {} cycles",
        worst(&rm),
        worst(&sn)
    );

    let mut g = c.benchmark_group("abl_bank_order");
    g.sample_size(10);
    for order in [BankOrder::RowMajor, BankOrder::Snake] {
        let mut machine = MachineConfig::paper_default();
        machine.bank_order = order;
        let cfg = RunConfig::new(SystemConfig::NearL3).with_machine(machine);
        g.bench_function(format!("{order:?}"), move |b| {
            b.iter(|| run_vecadd_forced_delta(200_000, Some(4), &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! The paper's evaluated workloads (Table 3) and their stream executors.
//!
//! Ten OpenMP-style kernels across three layout families:
//!
//! | family | workloads | layout knob |
//! |--------|-----------|-------------|
//! | affine | pathfinder, srad, hotspot, hotspot3D | Fig 8 affine alignment |
//! | linked CSR | pr (push/pull), bfs, sssp | Fig 11 linked CSR + Fig 9 spatial queue |
//! | pointer-chasing | link_list, hash_join, bin_tree | Fig 10 irregular affinity |
//!
//! Every workload runs under three system configurations
//! ([`config::SystemConfig`]): `In-Core` (no offloading), `Near-L3`
//! (near-stream computing, layout-oblivious) and `Aff-Alloc` (near-stream
//! computing over affinity-allocated, co-designed structures). The executors
//! charge their memory behaviour to an [`aff_nsc::SimEngine`] and return its
//! [`aff_nsc::Metrics`].
//!
//! [`suite`] ties it together: named workloads, Table 3 parameters, scaling.

pub mod affine;
pub mod config;
pub mod gen;
pub mod graphs;
pub mod pointer;
pub mod suite;

pub use config::{RunConfig, SystemConfig};
pub use suite::{run, WorkloadName};

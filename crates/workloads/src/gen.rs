//! Workload input generators: Kronecker (R-MAT) graphs, power-law graphs
//! with controlled average degree, uniform keys, and the matched synthetic
//! stand-ins for the paper's real-world graphs (Table 4).
//!
//! The Kronecker generator follows the GAP/Graph500 recursive construction
//! with the paper's partition probabilities A/B/C = 0.57/0.19/0.19
//! (Table 3). The power-law generator draws out-degrees from a truncated
//! Zipf so Fig 19's average-degree sweep holds |E| fixed while skewing
//! connectivity. Real-world substitutes match |V|, |E| and degree skew of
//! twitch-gamers and gplus — the properties that make them hard to
//! partition — since the originals cannot be downloaded in this offline
//! reproduction (see DESIGN.md §2).

use aff_ds::graph::Graph;
use aff_sim_core::rng::SimRng;

/// Kronecker/R-MAT probabilities (Table 3: A/B/C = 0.57/0.19/0.19).
pub const KRON_A: f64 = 0.57;
/// Probability of the top-right partition.
pub const KRON_B: f64 = 0.19;
/// Probability of the bottom-left partition.
pub const KRON_C: f64 = 0.19;

/// Generate a Kronecker graph with `2^scale` vertices and
/// `edge_factor · 2^scale` undirected edges (stored symmetrized).
pub fn kronecker(scale: u32, edge_factor: u32, seed: u64) -> Graph {
    let n = 1u32 << scale;
    let mut rng = SimRng::new(seed);
    let m = (u64::from(edge_factor) * u64::from(n)) as usize;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut lo_s, mut lo_d) = (0u32, 0u32);
        let mut span = n;
        while span > 1 {
            span /= 2;
            let r = rng.unit_f64();
            let (ds, dd) = if r < KRON_A {
                (0, 0)
            } else if r < KRON_A + KRON_B {
                (0, 1)
            } else if r < KRON_A + KRON_B + KRON_C {
                (1, 0)
            } else {
                (1, 1)
            };
            lo_s += ds * span;
            lo_d += dd * span;
        }
        edges.push((lo_s, lo_d));
    }
    // Permute vertex labels so degree does not correlate with id (GAP does
    // the same); otherwise partitioning would be artificially easy.
    let mut perm: Vec<u32> = (0..n).collect();
    rng.shuffle(&mut perm);
    for e in &mut edges {
        e.0 = perm[e.0 as usize];
        e.1 = perm[e.1 as usize];
    }
    Graph::from_edges(n, &edges).symmetrized()
}

/// Weighted Kronecker for sssp: weights uniform in `[1, 255]` (Table 3).
pub fn kronecker_weighted(scale: u32, edge_factor: u32, seed: u64) -> Graph {
    let g = kronecker(scale, edge_factor, seed);
    let mut rng = SimRng::new(seed ^ 0x5550);
    let mut edges = Vec::with_capacity(g.num_edges());
    let mut weights = Vec::with_capacity(g.num_edges());
    for v in 0..g.num_vertices() {
        for &t in g.neighbors(v) {
            edges.push((v, t));
            weights.push(1 + rng.below(255) as u32);
        }
    }
    Graph::from_weighted_edges(g.num_vertices(), &edges, &weights)
}

/// Power-law graph: `num_edges` total directed edges over `n` vertices with
/// Zipf(`alpha`)-skewed out-degrees. Used for the Fig 19 degree sweep
/// (fixed |E|, varying `n` ⇒ varying average degree) and the Table 4
/// substitutes. Edge lists are sorted by source (common practice, §7.2).
pub fn power_law(n: u32, num_edges: usize, alpha: f64, seed: u64) -> Graph {
    assert!(n > 1, "need at least two vertices");
    let mut rng = SimRng::new(seed);
    // Zipf ranks for out-degree shares.
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / f64::from(r).powf(alpha)).collect();
    let total: f64 = weights.iter().sum();
    // Assign ranks to random vertices.
    let mut perm: Vec<u32> = (0..n).collect();
    rng.shuffle(&mut perm);
    let mut edges = Vec::with_capacity(num_edges);
    let mut acc = 0.0f64;
    let mut cum: Vec<f64> = Vec::with_capacity(n as usize);
    for w in &weights {
        acc += w / total;
        cum.push(acc);
    }
    for _ in 0..num_edges {
        let rs = rng.unit_f64();
        let rank = cum.partition_point(|&c| c < rs).min(n as usize - 1);
        let src = perm[rank];
        let dst = rng.below(u64::from(n)) as u32;
        edges.push((src, dst));
    }
    edges.sort_unstable();
    Graph::from_edges(n, &edges)
}

/// Profile of a real-world graph we substitute synthetically (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealWorldProfile {
    /// Dataset name.
    pub name: &'static str,
    /// Vertex count.
    pub vertices: u32,
    /// Edge count.
    pub edges: usize,
    /// Average degree (for reporting; `edges / vertices`).
    pub avg_degree: u32,
}

/// twitch-gamers: 168,114 vertices, 13,595,114 edges, avg degree 81.
pub const TWITCH_GAMERS: RealWorldProfile = RealWorldProfile {
    name: "twitch-gamers",
    vertices: 168_114,
    edges: 13_595_114,
    avg_degree: 81,
};

/// gplus: 107,614 vertices, 13,673,453 edges, avg degree 127.
pub const GPLUS: RealWorldProfile = RealWorldProfile {
    name: "gplus",
    vertices: 107_614,
    edges: 13_673_453,
    avg_degree: 127,
};

/// Synthesize a stand-in for `profile`, scaled down by `1/scale_div` in both
/// |V| and |E| (degree preserved). `scale_div = 1` reproduces the full size.
pub fn real_world(profile: RealWorldProfile, scale_div: u32, seed: u64) -> Graph {
    let n = (profile.vertices / scale_div).max(64);
    let m = profile.edges / scale_div as usize;
    power_law(n, m, 0.8, seed)
}

/// Attach uniform `[1, 255]` weights to every edge of `g` (for sssp on
/// generated graphs that are not already weighted).
pub fn with_uniform_weights(g: &Graph, seed: u64) -> Graph {
    let mut rng = SimRng::new(seed ^ 0x77E1);
    let mut edges = Vec::with_capacity(g.num_edges());
    let mut weights = Vec::with_capacity(g.num_edges());
    for v in 0..g.num_vertices() {
        for &t in g.neighbors(v) {
            edges.push((v, t));
            weights.push(1 + rng.below(255) as u32);
        }
    }
    Graph::from_weighted_edges(g.num_vertices(), &edges, &weights)
}

/// Uniform random `u64` keys.
pub fn uniform_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SimRng::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kronecker_size_and_symmetry() {
        let g = kronecker(10, 8, 1);
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.num_edges(), 2 * 8 * 1024);
    }

    #[test]
    fn kronecker_is_skewed() {
        let g = kronecker(12, 16, 2);
        let mut degrees: Vec<u64> = (0..g.num_vertices()).map(|v| g.degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: u64 = degrees[..degrees.len() / 100].iter().sum();
        let total: u64 = degrees.iter().sum();
        assert!(
            top1pct as f64 > total as f64 * 0.1,
            "top 1% of Kronecker vertices should hold >10% of edges"
        );
    }

    #[test]
    fn kronecker_deterministic() {
        let a = kronecker(8, 4, 42);
        let b = kronecker(8, 4, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_kronecker_bounds() {
        let g = kronecker_weighted(8, 4, 3);
        assert!(g.is_weighted());
        for v in 0..g.num_vertices() {
            for &w in g.weights_of(v).unwrap() {
                assert!((1..=255).contains(&w));
            }
        }
    }

    #[test]
    fn power_law_degree_control() {
        let g = power_law(1 << 12, 1 << 16, 0.8, 7);
        assert_eq!(g.num_edges(), 1 << 16);
        assert!((g.avg_degree() - 16.0).abs() < 0.01);
    }

    #[test]
    fn power_law_is_skewed() {
        let g = power_law(1 << 12, 1 << 16, 0.8, 7);
        let max_deg = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg as f64 > g.avg_degree() * 20.0);
    }

    #[test]
    fn real_world_profiles_match_table4() {
        assert_eq!(TWITCH_GAMERS.vertices, 168_114);
        assert_eq!(TWITCH_GAMERS.edges, 13_595_114);
        assert_eq!(GPLUS.avg_degree, 127);
        let g = real_world(TWITCH_GAMERS, 64, 5);
        assert!((g.avg_degree() - 81.0).abs() < 2.0, "degree preserved under scaling");
    }

    #[test]
    fn uniform_weights_attach() {
        let g = power_law(256, 1024, 0.8, 3);
        let w = with_uniform_weights(&g, 3);
        assert!(w.is_weighted());
        assert_eq!(w.num_edges(), g.num_edges());
    }

    #[test]
    fn uniform_keys_unique_enough() {
        let ks = uniform_keys(10_000, 11);
        let set: std::collections::HashSet<_> = ks.iter().collect();
        assert_eq!(set.len(), 10_000);
    }
}

//! Pointer-chasing workloads: link_list, hash_join, bin_tree (Table 3).
//!
//! These are latency-bound: the next access depends on the previous one, so
//! the cycle estimate is dominated by the serial-chain term. The model:
//!
//! * **In-Core**: each dereference is a full core↔bank round trip. The OOO
//!   window overlaps a few *independent* queries ([`IN_CORE_MLP`]) but never
//!   accelerates a single chain (§5.3: "run ahead distance is limited by the
//!   size of the ROB").
//! * **Near-L3**: the pointer-chasing stream *migrates* with the data — per
//!   node it pays only the migration hops plus the bank access, and each
//!   bank's SEL3 runs `MachineConfig::sel3_streams_per_bank` chains
//!   concurrently.
//!
//! Affinity alloc shortens (Hybrid) or eliminates (Min-Hop) the migration
//! hops — at the cost, for Min-Hop, of collapsing all parallelism onto one
//! bank, which is the Fig 13 `bin_tree` pathology this module reproduces.

use crate::config::{HintMode, RunConfig, SystemConfig};
use aff_ds::hash::HashChainTable;
use aff_ds::layout::AllocMode;
use aff_ds::list::AffLinkedList;
use aff_ds::tree::AffBinaryTree;
use aff_nsc::engine::{Metrics, SimEngine};
use aff_sim_core::config::CACHE_LINE;
use aff_sim_core::mine::{self, RegionKind};
use aff_sim_core::rng::SimRng;
use aff_sim_core::trace::Event;
use affinity_alloc::{AffinityAllocator, InferredHint};

/// Independent queries an OOO core overlaps (memory-level parallelism
/// across — never within — chains).
pub const IN_CORE_MLP: u64 = 4;

/// Parameters for `link_list` (Table 3: 8 B key, 512 nodes/list, 1k lists,
/// 1 query/list).
#[derive(Debug, Clone, Copy)]
pub struct LinkListParams {
    /// Number of independent lists.
    pub lists: usize,
    /// Nodes per list.
    pub nodes_per_list: usize,
}

impl Default for LinkListParams {
    fn default() -> Self {
        Self {
            lists: 1000,
            nodes_per_list: 512,
        }
    }
}

/// Parameters for `hash_join` (Table 3: 256k ⋈ 512k, hit rate 1/8).
#[derive(Debug, Clone, Copy)]
pub struct HashJoinParams {
    /// Keys in the build-side table.
    pub build_keys: usize,
    /// Probe lookups.
    pub probe_keys: usize,
    /// Buckets (sized so chains stay ≤ 8).
    pub buckets: u64,
    /// Fraction of probes that hit (paper: 1/8).
    pub hit_rate: f64,
}

impl Default for HashJoinParams {
    fn default() -> Self {
        Self {
            build_keys: 256 * 1024,
            probe_keys: 512 * 1024,
            buckets: 128 * 1024,
            hit_rate: 1.0 / 8.0,
        }
    }
}

/// Parameters for `bin_tree` (Table 3: 128k nodes, 512k uniform lookups).
#[derive(Debug, Clone, Copy)]
pub struct BinTreeParams {
    /// Tree nodes (random insertion order, unbalanced).
    pub nodes: usize,
    /// Uniform lookups.
    pub lookups: usize,
}

impl Default for BinTreeParams {
    fn default() -> Self {
        Self {
            nodes: 128 * 1024,
            lookups: 512 * 1024,
        }
    }
}

fn alloc_for(cfg: &RunConfig) -> AffinityAllocator {
    AffinityAllocator::with_seed(cfg.machine.clone(), cfg.system.policy(), cfg.seed)
}

fn node_mode(cfg: &RunConfig) -> AllocMode {
    if !cfg.system.uses_affinity_alloc() {
        return AllocMode::Baseline;
    }
    match &cfg.hints {
        HintMode::Annotated => AllocMode::Affinity,
        HintMode::NoHints => AllocMode::Unhinted,
        // A mined Chain hint re-enables the per-node affinity addresses —
        // predecessor, parent, or bucket head, realized by the structure's
        // own builder (the aff_addrs of Fig 10/11).
        HintMode::Inferred(p) => match p.region_hint(0).map(|h| &h.hint) {
            Some(InferredHint::Chain) => AllocMode::Affinity,
            _ => AllocMode::Unhinted,
        },
    }
}

/// Profiling: one ProfileTouch per dereference of a sampled chain — region 0
/// is the node pool, elements are line-granular node identities.
fn emit_chain_touches(engine: &mut SimEngine, banks: &[u32], step: u64) {
    for &b in banks {
        engine.record(Event::ProfileTouch {
            region: 0,
            elem: u64::from(b),
            step,
        });
    }
}

/// Charge one chain traversal (a sequence of dereferences at `banks`) and
/// return its serial latency in cycles.
fn charge_chain(
    engine: &mut SimEngine,
    banks: &[u32],
    entry_bank: u32,
    in_core: bool,
    core: u32,
) -> u64 {
    let cfg = engine.config();
    let (hop_lat, l3_lat) = (cfg.hop_latency, cfg.l3_latency);
    let mut serial = 0u64;
    let mut prev = entry_bank;
    for &b in banks {
        if in_core {
            engine.core_read_lines(core, b, 1);
            serial += 2 * u64::from(engine.topo().manhattan(core, b)) * hop_lat + l3_lat;
        } else {
            engine.bank_read_lines(b, 1);
            engine.se_ops(b, 1);
            if prev != b {
                engine.migrate(prev, b, 1);
            }
            serial += u64::from(engine.topo().manhattan(prev, b)) * hop_lat + l3_lat;
            prev = b;
        }
    }
    serial
}

/// Aggregate the per-chain serial latencies into the engine's chain term,
/// given how many chains run concurrently.
fn fold_serial(engine: &mut SimEngine, per_chain: &[u64], concurrency: u64) {
    let total: u64 = per_chain.iter().sum();
    let longest = per_chain.iter().copied().max().unwrap_or(0);
    // Chains execute `concurrency` at a time; the critical path is the
    // larger of (work / concurrency) and the single longest chain.
    engine.chain_cycles((total / concurrency.max(1)).max(longest));
}

/// Run `link_list` under `cfg`.
pub fn run_link_list(params: LinkListParams, cfg: &RunConfig) -> Metrics {
    let mut alloc = alloc_for(cfg);
    let mode = node_mode(cfg);
    let mut engine = SimEngine::new(cfg.machine.clone());
    let in_core = matches!(cfg.system, SystemConfig::InCore);
    let lists: Vec<AffLinkedList> = (0..params.lists)
        .map(|_| AffLinkedList::build(&mut alloc, params.nodes_per_list, mode).expect("list"))
        .collect();
    engine.import_residency(alloc.resident_per_bank());
    engine.offload_config_multicast(0, 1);
    mine::register_region(
        0,
        RegionKind::Nodes,
        CACHE_LINE,
        (params.lists * params.nodes_per_list) as u64,
    );
    let mining = mine::thread_miner_installed();
    let stride = (params.lists / 1024).max(1);

    let mut serials = Vec::with_capacity(params.lists);
    let mut banks: Vec<u32> = Vec::new();
    for (i, list) in lists.iter().enumerate() {
        banks.clear();
        banks.extend(list.nodes().iter().map(|n| n.bank));
        if mining && i % stride == 0 {
            emit_chain_touches(&mut engine, &banks, i as u64);
        }
        let core = (i % cfg.machine.num_banks() as usize) as u32;
        let entry = if banks.is_empty() { core } else { banks[0] };
        serials.push(charge_chain(&mut engine, &banks, entry, in_core, core));
    }
    let concurrency = if in_core {
        u64::from(cfg.machine.num_banks()) * IN_CORE_MLP
    } else {
        u64::from(cfg.machine.num_banks()) * u64::from(cfg.machine.sel3_streams_per_bank)
    };
    fold_serial(&mut engine, &serials, concurrency);
    let mut m = engine.try_finish().unwrap_or_else(|e| panic!("{e}"));
    m.degradation.merge(&alloc.degradation());
    cfg.hints.stamp(&mut m);
    m
}

/// Run `hash_join` under `cfg`.
pub fn run_hash_join(params: HashJoinParams, cfg: &RunConfig) -> Metrics {
    let mut alloc = alloc_for(cfg);
    let mode = node_mode(cfg);
    let mut rng = SimRng::new(cfg.seed ^ 0x44A5);
    let build: Vec<u64> = (0..params.build_keys).map(|_| rng.next_u64()).collect();
    let table =
        HashChainTable::build(&mut alloc, params.buckets, &build, mode).expect("hash table");
    let mut engine = SimEngine::new(cfg.machine.clone());
    let in_core = matches!(cfg.system, SystemConfig::InCore);
    engine.import_residency(alloc.resident_per_bank());
    engine.offload_config_multicast(0, 2);
    mine::register_region(0, RegionKind::Nodes, CACHE_LINE, table.len() as u64);
    let mining = mine::thread_miner_installed();
    let stride = (params.probe_keys / 1024).max(1);

    let mut serials = Vec::with_capacity(params.probe_keys);
    let mut banks: Vec<u32> = Vec::new();
    for i in 0..params.probe_keys {
        // Hit-rate-controlled probe key: hits reuse a stored key.
        let key = if rng.chance(params.hit_rate) {
            build[rng.index(build.len())]
        } else {
            rng.next_u64()
        };
        let (head_bank, _hit) = table.probe_into(key, &mut banks);
        let core = (i % cfg.machine.num_banks() as usize) as u32;
        // Probe = read head, then walk the chain.
        banks.insert(0, head_bank);
        if mining && i % stride == 0 {
            emit_chain_touches(&mut engine, &banks, i as u64);
        }
        serials.push(charge_chain(&mut engine, &banks, head_bank, in_core, core));
    }
    let concurrency = if in_core {
        u64::from(cfg.machine.num_banks()) * IN_CORE_MLP
    } else {
        u64::from(cfg.machine.num_banks()) * u64::from(cfg.machine.sel3_streams_per_bank)
    };
    fold_serial(&mut engine, &serials, concurrency);
    let mut m = engine.try_finish().unwrap_or_else(|e| panic!("{e}"));
    m.degradation.merge(&alloc.degradation());
    cfg.hints.stamp(&mut m);
    m
}

/// Run `bin_tree` under `cfg`.
pub fn run_bin_tree(params: BinTreeParams, cfg: &RunConfig) -> Metrics {
    let mut alloc = alloc_for(cfg);
    let mode = node_mode(cfg);
    let mut rng = SimRng::new(cfg.seed ^ 0xB17E);
    let keys: Vec<u64> = (0..params.nodes).map(|_| rng.next_u64()).collect();
    let tree = AffBinaryTree::build(&mut alloc, &keys, mode).expect("tree");
    let mut engine = SimEngine::new(cfg.machine.clone());
    let in_core = matches!(cfg.system, SystemConfig::InCore);
    engine.import_residency(alloc.resident_per_bank());
    engine.offload_config_multicast(0, 1);
    mine::register_region(0, RegionKind::Nodes, CACHE_LINE, params.nodes as u64);
    let mining = mine::thread_miner_installed();
    let stride = (params.lookups / 1024).max(1);

    let mut serials = Vec::with_capacity(params.lookups);
    let mut banks: Vec<u32> = Vec::new();
    for i in 0..params.lookups {
        let key = keys[rng.index(keys.len())];
        tree.lookup_path_banks_into(key, &mut banks);
        if mining && i % stride == 0 {
            emit_chain_touches(&mut engine, &banks, i as u64);
        }
        let core = (i % cfg.machine.num_banks() as usize) as u32;
        let entry = banks.first().copied().unwrap_or(core);
        serials.push(charge_chain(&mut engine, &banks, entry, in_core, core));
    }
    let concurrency = if in_core {
        u64::from(cfg.machine.num_banks()) * IN_CORE_MLP
    } else {
        u64::from(cfg.machine.num_banks()) * u64::from(cfg.machine.sel3_streams_per_bank)
    };
    fold_serial(&mut engine, &serials, concurrency);
    let mut m = engine.try_finish().unwrap_or_else(|e| panic!("{e}"));
    m.degradation.merge(&alloc.degradation());
    cfg.hints.stamp(&mut m);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_alloc::BankSelectPolicy;

    fn small_list() -> LinkListParams {
        LinkListParams {
            lists: 64,
            nodes_per_list: 128,
        }
    }

    fn small_tree() -> BinTreeParams {
        BinTreeParams {
            nodes: 4096,
            lookups: 8192,
        }
    }

    fn small_join() -> HashJoinParams {
        HashJoinParams {
            build_keys: 4096,
            probe_keys: 8192,
            buckets: 2048,
            hit_rate: 0.125,
        }
    }

    #[test]
    fn ndc_beats_in_core_on_pointer_chasing() {
        let p = small_list();
        let incore = run_link_list(p, &RunConfig::new(SystemConfig::InCore));
        let aff = run_link_list(p, &RunConfig::new(SystemConfig::aff_alloc_default()));
        assert!(
            aff.cycles < incore.cycles,
            "aff {} vs incore {}",
            aff.cycles,
            incore.cycles
        );
    }

    #[test]
    fn affinity_beats_baseline_layout_on_lists() {
        let p = small_list();
        let near = run_link_list(p, &RunConfig::new(SystemConfig::NearL3));
        let aff = run_link_list(p, &RunConfig::new(SystemConfig::aff_alloc_default()));
        assert!(aff.cycles < near.cycles);
        assert!(aff.total_hop_flits < near.total_hop_flits);
    }

    #[test]
    fn min_hop_bin_tree_pathology() {
        // Fig 13: Min-Hop piles the tree on one bank — eliminating migration
        // traffic but destroying bank parallelism and blowing the bank's
        // capacity; Hybrid-5 must win.
        let p = small_tree();
        let minhop = run_bin_tree(
            p,
            &RunConfig::new(SystemConfig::AffAlloc(BankSelectPolicy::MinHop)),
        );
        let hybrid = run_bin_tree(p, &RunConfig::new(SystemConfig::aff_alloc_default()));
        assert!(minhop.total_hop_flits < hybrid.total_hop_flits, "min-hop kills traffic");
        assert!(hybrid.cycles < minhop.cycles, "...but hybrid still wins on time");
        assert!(minhop.bank_imbalance > hybrid.bank_imbalance);
    }

    #[test]
    fn hash_join_runs_all_systems() {
        let p = small_join();
        for sys in [
            SystemConfig::InCore,
            SystemConfig::NearL3,
            SystemConfig::aff_alloc_default(),
        ] {
            let m = run_hash_join(p, &RunConfig::new(sys));
            assert!(m.cycles > 0, "{}", sys.label());
        }
    }

    #[test]
    fn hash_join_affinity_localizes_probes() {
        let p = small_join();
        let near = run_hash_join(p, &RunConfig::new(SystemConfig::NearL3));
        let aff = run_hash_join(p, &RunConfig::new(SystemConfig::aff_alloc_default()));
        assert!(aff.total_hop_flits < near.total_hop_flits);
    }

    #[test]
    fn closed_loop_recovers_chain_hints() {
        use affinity_alloc::AffinityProfile;
        use std::sync::Arc;

        // Phase 1: profile an unhinted link_list run.
        let p = small_list();
        let cfg = RunConfig::new(SystemConfig::aff_alloc_default());
        mine::install_thread_miner();
        let none = run_link_list(p, &cfg.clone().with_hints(HintMode::NoHints));
        let mined = mine::take_thread_miner().expect("miner was installed");
        let profile = AffinityProfile::infer(&mined);
        assert_eq!(
            profile.region_hint(0).map(|h| &h.hint),
            Some(&InferredHint::Chain),
            "a 128-deref traversal per step must infer a chain"
        );

        // Phase 2: the Chain hint restores the predecessor affinity and the
        // annotated performance.
        let annotated = run_link_list(p, &cfg);
        let inferred =
            run_link_list(p, &cfg.clone().with_hints(HintMode::Inferred(Arc::new(profile))));
        assert_eq!(inferred.cycles, annotated.cycles);
        assert!(inferred.cycles < none.cycles, "chain hint must beat no hints");
        assert_eq!(inferred.hint_source.as_deref(), Some("inferred"));
    }

    #[test]
    fn defaults_match_table3() {
        let l = LinkListParams::default();
        assert_eq!((l.lists, l.nodes_per_list), (1000, 512));
        let h = HashJoinParams::default();
        assert_eq!(h.build_keys, 256 * 1024);
        assert_eq!(h.probe_keys, 512 * 1024);
        assert!((h.hit_rate - 0.125).abs() < 1e-12);
        let b = BinTreeParams::default();
        assert_eq!((b.nodes, b.lookups), (128 * 1024, 512 * 1024));
    }
}

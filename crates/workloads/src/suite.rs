//! The benchmark suite: Table 3's ten workloads behind one entry point.
//!
//! [`run`] executes a named workload under a [`RunConfig`] and returns the
//! engine metrics (plus per-iteration stats for the frontier algorithms).
//! Input sizes at `scale = 1` are scaled down from Table 3 where the full
//! size would make the complete figure suite take hours (graphs use a
//! 2^14-vertex Kronecker instead of 2^17; pointer workloads divide counts
//! by 4); EXPERIMENTS.md records the exact sizes used per figure, and the
//! `--full` harness flag restores Table 3 exactly.

use crate::affine::{run_stencil, Stencil};
use crate::config::{RunConfig, SystemConfig};
use crate::gen;
use crate::graphs::{pick_source, DirectionPolicy, GraphInstance, GraphRun, IterStat};
use crate::pointer::{
    run_bin_tree, run_hash_join, run_link_list, BinTreeParams, HashJoinParams, LinkListParams,
};
use aff_ds::graph::Graph;
use aff_nsc::engine::Metrics;

/// The ten workloads of Table 3 (plus explicit push/pull variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadName {
    /// Rodinia pathfinder (affine, 1-D).
    Pathfinder,
    /// Rodinia srad (affine, 2-D).
    Srad,
    /// Rodinia hotspot (affine, 2-D).
    Hotspot,
    /// Rodinia hotspot3D (affine, 3-D).
    Hotspot3D,
    /// PageRank, best direction per system (pull In-Core, push NDC — §6).
    Pr,
    /// PageRank, push only.
    PrPush,
    /// PageRank, pull only.
    PrPull,
    /// BFS with the per-system direction-switching policy (§7.2).
    Bfs,
    /// BFS, push only.
    BfsPush,
    /// BFS, pull only.
    BfsPull,
    /// Single-source shortest paths (weighted Kronecker).
    Sssp,
    /// Linked-list search.
    LinkList,
    /// Hash join probe.
    HashJoin,
    /// Binary-tree lookups.
    BinTree,
}

impl WorkloadName {
    /// The ten names of Fig 12, in plot order.
    pub const FIG12: [WorkloadName; 10] = [
        WorkloadName::Pathfinder,
        WorkloadName::Hotspot,
        WorkloadName::Srad,
        WorkloadName::Hotspot3D,
        WorkloadName::Pr,
        WorkloadName::Bfs,
        WorkloadName::Sssp,
        WorkloadName::LinkList,
        WorkloadName::HashJoin,
        WorkloadName::BinTree,
    ];

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadName::Pathfinder => "pathfinder",
            WorkloadName::Srad => "srad",
            WorkloadName::Hotspot => "hotspot",
            WorkloadName::Hotspot3D => "hotspot3D",
            WorkloadName::Pr => "pr",
            WorkloadName::PrPush => "pr_push",
            WorkloadName::PrPull => "pr_pull",
            WorkloadName::Bfs => "bfs",
            WorkloadName::BfsPush => "bfs_push",
            WorkloadName::BfsPull => "bfs_pull",
            WorkloadName::Sssp => "sssp",
            WorkloadName::LinkList => "link_list",
            WorkloadName::HashJoin => "hash_join",
            WorkloadName::BinTree => "bin_tree",
        }
    }

    /// Whether this workload records per-iteration stats.
    pub fn is_frontier(&self) -> bool {
        matches!(
            self,
            WorkloadName::Bfs | WorkloadName::BfsPush | WorkloadName::BfsPull | WorkloadName::Sssp
        )
    }
}

/// Result of one suite run.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// Engine metrics.
    pub metrics: Metrics,
    /// Per-iteration stats for frontier workloads (else empty).
    pub iters: Vec<IterStat>,
}

impl From<GraphRun> for SuiteRun {
    fn from(r: GraphRun) -> Self {
        SuiteRun {
            metrics: r.metrics,
            iters: r.iters,
        }
    }
}

impl From<Metrics> for SuiteRun {
    fn from(metrics: Metrics) -> Self {
        SuiteRun {
            metrics,
            iters: Vec::new(),
        }
    }
}

/// Base Kronecker scale at `RunConfig::scale == 1` (2^14 vertices; Table 3
/// uses 2^17 — pass `--full` in the harness or `scale = 8`).
pub const BASE_KRON_SCALE: u32 = 14;
/// Kronecker edge factor (Table 3: 4M edges / 128k vertices = 32 directed,
/// 16 undirected before symmetrization).
pub const KRON_EDGE_FACTOR: u32 = 16;

/// The Kronecker input for graph workloads at the given scale multiplier.
pub fn kron_input(scale: u32, seed: u64) -> Graph {
    gen::kronecker(BASE_KRON_SCALE + log2(scale), KRON_EDGE_FACTOR, seed)
}

/// The weighted Kronecker input for sssp.
pub fn kron_weighted_input(scale: u32, seed: u64) -> Graph {
    gen::kronecker_weighted(BASE_KRON_SCALE + log2(scale), KRON_EDGE_FACTOR, seed)
}

fn log2(scale: u32) -> u32 {
    31 - scale.max(1).leading_zeros()
}

fn stencil_for(name: WorkloadName, scale: u64) -> Stencil {
    match name {
        WorkloadName::Pathfinder => Stencil::pathfinder(1_500_000 * scale),
        WorkloadName::Srad => Stencil::srad(1024 * scale, 2048),
        WorkloadName::Hotspot => Stencil::hotspot(2048 * scale, 1024),
        WorkloadName::Hotspot3D => Stencil::hotspot3d(256, 1024, 8 * scale),
        _ => unreachable!("not an affine workload"),
    }
}

/// Run `name` under `cfg`.
///
/// # Panics
///
/// Panics on allocator failure (a harness bug, not an input condition).
pub fn run(name: WorkloadName, cfg: &RunConfig) -> SuiteRun {
    let scale = u64::from(cfg.scale);
    match name {
        WorkloadName::Pathfinder
        | WorkloadName::Srad
        | WorkloadName::Hotspot
        | WorkloadName::Hotspot3D => run_stencil(&stencil_for(name, scale), cfg).into(),

        WorkloadName::Pr => {
            // Best implementation per system (§6): pull for In-Core, push
            // for NDC configurations.
            match cfg.system {
                SystemConfig::InCore => run(WorkloadName::PrPull, cfg),
                _ => run(WorkloadName::PrPush, cfg),
            }
        }
        WorkloadName::PrPush => {
            GraphInstance::new(kron_input(cfg.scale, cfg.seed), cfg)
                .run_pr_push()
                .into()
        }
        WorkloadName::PrPull => {
            GraphInstance::new(kron_input(cfg.scale, cfg.seed), cfg)
                .run_pr_pull()
                .into()
        }
        WorkloadName::Bfs => {
            let policy = DirectionPolicy::default_for(cfg.system);
            let g = kron_input(cfg.scale, cfg.seed);
            let src = pick_source(&g);
            GraphInstance::new(g, cfg).run_bfs(src, policy).into()
        }
        WorkloadName::BfsPush => {
            let g = kron_input(cfg.scale, cfg.seed);
            let src = pick_source(&g);
            GraphInstance::new(g, cfg)
                .run_bfs(src, DirectionPolicy::PushOnly)
                .into()
        }
        WorkloadName::BfsPull => {
            let g = kron_input(cfg.scale, cfg.seed);
            let src = pick_source(&g);
            GraphInstance::new(g, cfg)
                .run_bfs(src, DirectionPolicy::PullOnly)
                .into()
        }
        WorkloadName::Sssp => {
            let g = kron_weighted_input(cfg.scale, cfg.seed);
            let src = pick_source(&g);
            GraphInstance::new(g, cfg).run_sssp(src).into()
        }

        WorkloadName::LinkList => {
            let p = LinkListParams {
                lists: 1000 * cfg.scale as usize,
                nodes_per_list: 512,
            };
            run_link_list(p, cfg).into()
        }
        WorkloadName::HashJoin => {
            let p = HashJoinParams {
                build_keys: 64 * 1024 * cfg.scale as usize,
                probe_keys: 128 * 1024 * cfg.scale as usize,
                buckets: 32 * 1024 * u64::from(cfg.scale),
                hit_rate: 1.0 / 8.0,
            };
            run_hash_join(p, cfg).into()
        }
        WorkloadName::BinTree => {
            let p = BinTreeParams {
                nodes: 32 * 1024 * cfg.scale as usize,
                lookups: 128 * 1024 * cfg.scale as usize,
            };
            run_bin_tree(p, cfg).into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_fig12() {
        let labels: Vec<&str> = WorkloadName::FIG12.iter().map(|w| w.label()).collect();
        assert_eq!(
            labels,
            vec![
                "pathfinder",
                "hotspot",
                "srad",
                "hotspot3D",
                "pr",
                "bfs",
                "sssp",
                "link_list",
                "hash_join",
                "bin_tree"
            ]
        );
    }

    #[test]
    fn log2_scaling() {
        assert_eq!(log2(1), 0);
        assert_eq!(log2(2), 1);
        assert_eq!(log2(8), 3);
    }

    #[test]
    fn frontier_flags() {
        assert!(WorkloadName::Bfs.is_frontier());
        assert!(WorkloadName::Sssp.is_frontier());
        assert!(!WorkloadName::Pr.is_frontier());
        assert!(!WorkloadName::LinkList.is_frontier());
    }

    #[test]
    fn pr_picks_direction_by_system() {
        // Smoke test at a tiny scale: both paths execute.
        let mut cfg = RunConfig::new(SystemConfig::InCore).with_seed(3);
        cfg.machine = aff_sim_core::config::MachineConfig::paper_default();
        // Shrink the input via a tiny Kronecker by overriding scale = 1 and
        // relying on BASE_KRON_SCALE being small enough for tests.
        let r = run(WorkloadName::Pr, &cfg);
        assert!(r.metrics.cycles > 0);
    }
}

//! Run configuration: which system, which policy, what scale.

use aff_nsc::ExecMode;
use aff_sim_core::config::MachineConfig;
use affinity_alloc::BankSelectPolicy;

/// The three system configurations of Fig 12.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SystemConfig {
    /// Wide OOO cores with prefetchers; nothing offloaded.
    InCore,
    /// Near-stream computing over baseline (layout-oblivious) allocation.
    NearL3,
    /// Near-stream computing over affinity-allocated, co-designed layouts,
    /// with the given irregular bank-select policy.
    AffAlloc(BankSelectPolicy),
}

impl SystemConfig {
    /// The paper's default `Aff-Alloc` (Hybrid-5).
    pub fn aff_alloc_default() -> Self {
        SystemConfig::AffAlloc(BankSelectPolicy::paper_default())
    }

    /// Label used in figures.
    pub fn label(&self) -> String {
        match self {
            SystemConfig::InCore => "In-Core".into(),
            SystemConfig::NearL3 => "Near-L3".into(),
            SystemConfig::AffAlloc(p) => format!("Aff-Alloc({})", p.label()),
        }
    }

    /// The execution mode (where computation runs).
    pub fn exec_mode(&self) -> ExecMode {
        match self {
            SystemConfig::InCore => ExecMode::InCore,
            _ => ExecMode::NearL3,
        }
    }

    /// Whether layouts go through the affinity allocator.
    pub fn uses_affinity_alloc(&self) -> bool {
        matches!(self, SystemConfig::AffAlloc(_))
    }

    /// The irregular bank-select policy (meaningful only for `AffAlloc`;
    /// others report the paper default for allocator construction).
    pub fn policy(&self) -> BankSelectPolicy {
        match self {
            SystemConfig::AffAlloc(p) => *p,
            _ => BankSelectPolicy::paper_default(),
        }
    }
}

/// A complete run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The simulated machine (Table 2 defaults).
    pub machine: MachineConfig,
    /// The system under test.
    pub system: SystemConfig,
    /// Input scale multiplier: 1 = the harness default size. Figures 15/16
    /// sweep this.
    pub scale: u32,
    /// Experiment seed (inputs and any randomized layout derive from it).
    pub seed: u64,
}

impl RunConfig {
    /// Default: paper machine, Aff-Alloc(Hybrid-5), scale 1, seed 2023.
    pub fn new(system: SystemConfig) -> Self {
        Self {
            machine: MachineConfig::paper_default(),
            system,
            scale: 1,
            seed: 2023,
        }
    }

    /// Builder: set the input scale.
    pub fn with_scale(mut self, scale: u32) -> Self {
        self.scale = scale.max(1);
        self
    }

    /// Builder: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: replace the machine.
    pub fn with_machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Builder: install a fault plan on the machine under test. Every layer
    /// (allocator, NoC, caches, stream engines) picks it up from the machine
    /// config; an empty plan leaves the run byte-identical to fault-free.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not validate against the machine (see
    /// [`MachineConfig::with_faults`]).
    pub fn with_faults(mut self, faults: aff_sim_core::fault::FaultPlan) -> Self {
        self.machine = self.machine.with_faults(faults);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(SystemConfig::InCore.label(), "In-Core");
        assert_eq!(SystemConfig::NearL3.label(), "Near-L3");
        assert_eq!(
            SystemConfig::aff_alloc_default().label(),
            "Aff-Alloc(Hybrid-5)"
        );
    }

    #[test]
    fn exec_modes() {
        assert_eq!(SystemConfig::InCore.exec_mode(), ExecMode::InCore);
        assert_eq!(SystemConfig::NearL3.exec_mode(), ExecMode::NearL3);
        assert_eq!(SystemConfig::aff_alloc_default().exec_mode(), ExecMode::NearL3);
        assert!(!SystemConfig::NearL3.uses_affinity_alloc());
        assert!(SystemConfig::aff_alloc_default().uses_affinity_alloc());
    }

    #[test]
    fn builder() {
        let c = RunConfig::new(SystemConfig::InCore).with_scale(4).with_seed(9);
        assert_eq!(c.scale, 4);
        assert_eq!(c.seed, 9);
        assert_eq!(RunConfig::new(SystemConfig::InCore).with_scale(0).scale, 1);
    }

    #[test]
    fn faults_thread_through_the_machine() {
        use aff_sim_core::fault::FaultPlan;
        let c = RunConfig::new(SystemConfig::aff_alloc_default())
            .with_faults(FaultPlan::none().fail_bank(7));
        assert!(c.machine.faults.failed_banks.contains(&7));
        assert_eq!(c.machine.num_healthy_banks(), 63);
    }
}

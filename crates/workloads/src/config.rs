//! Run configuration: which system, which policy, what scale.

use aff_nsc::ExecMode;
use aff_sim_core::config::MachineConfig;
use affinity_alloc::{AffinityProfile, BankSelectPolicy};
use std::sync::Arc;

/// The three system configurations of Fig 12.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SystemConfig {
    /// Wide OOO cores with prefetchers; nothing offloaded.
    InCore,
    /// Near-stream computing over baseline (layout-oblivious) allocation.
    NearL3,
    /// Near-stream computing over affinity-allocated, co-designed layouts,
    /// with the given irregular bank-select policy.
    AffAlloc(BankSelectPolicy),
}

impl SystemConfig {
    /// The paper's default `Aff-Alloc` (Hybrid-5).
    pub fn aff_alloc_default() -> Self {
        SystemConfig::AffAlloc(BankSelectPolicy::paper_default())
    }

    /// Label used in figures.
    pub fn label(&self) -> String {
        match self {
            SystemConfig::InCore => "In-Core".into(),
            SystemConfig::NearL3 => "Near-L3".into(),
            SystemConfig::AffAlloc(p) => format!("Aff-Alloc({})", p.label()),
        }
    }

    /// The execution mode (where computation runs).
    pub fn exec_mode(&self) -> ExecMode {
        match self {
            SystemConfig::InCore => ExecMode::InCore,
            _ => ExecMode::NearL3,
        }
    }

    /// Whether layouts go through the affinity allocator.
    pub fn uses_affinity_alloc(&self) -> bool {
        matches!(self, SystemConfig::AffAlloc(_))
    }

    /// The irregular bank-select policy (meaningful only for `AffAlloc`;
    /// others report the paper default for allocator construction).
    pub fn policy(&self) -> BankSelectPolicy {
        match self {
            SystemConfig::AffAlloc(p) => *p,
            _ => BankSelectPolicy::paper_default(),
        }
    }
}

/// Where placement hints come from — the axis the `inference` figure
/// family sweeps.
#[derive(Debug, Clone, Default)]
pub enum HintMode {
    /// Hand annotations as written into each workload (the paper's API use;
    /// every pre-existing figure runs here).
    #[default]
    Annotated,
    /// No hints at all: structures still allocate through the runtime (where
    /// the system config says so) but carry no affinity knowledge. This is
    /// the profiling configuration — and the floor of the comparison.
    NoHints,
    /// Hints replayed from a mined [`AffinityProfile`] instead of hand
    /// annotations — the closed loop's second phase.
    Inferred(Arc<AffinityProfile>),
}

impl HintMode {
    /// Label used in figures and sidecars.
    pub fn label(&self) -> &'static str {
        match self {
            HintMode::Annotated => "annotated",
            HintMode::NoHints => "none",
            HintMode::Inferred(_) => "inferred",
        }
    }

    /// Whether this is the default (hand-annotated) mode.
    pub fn is_annotated(&self) -> bool {
        matches!(self, HintMode::Annotated)
    }

    /// The profile, when inferred.
    pub fn profile(&self) -> Option<&AffinityProfile> {
        match self {
            HintMode::Inferred(p) => Some(p),
            _ => None,
        }
    }

    /// Stamp the hint provenance onto run metrics. Annotated runs are left
    /// untouched (fields stay at their defaults), so every pre-existing
    /// figure's bytes are unchanged.
    pub fn stamp(&self, m: &mut aff_nsc::engine::Metrics) {
        if !self.is_annotated() {
            m.hint_source = Some(self.label().to_string());
        }
        if let HintMode::Inferred(p) = self {
            m.inferred_hints = p.hint_count();
        }
    }
}

/// A complete run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The simulated machine (Table 2 defaults).
    pub machine: MachineConfig,
    /// The system under test.
    pub system: SystemConfig,
    /// Input scale multiplier: 1 = the harness default size. Figures 15/16
    /// sweep this.
    pub scale: u32,
    /// Experiment seed (inputs and any randomized layout derive from it).
    pub seed: u64,
    /// Where placement hints come from (default: hand annotations).
    pub hints: HintMode,
}

impl RunConfig {
    /// Default: paper machine, Aff-Alloc(Hybrid-5), scale 1, seed 2023.
    pub fn new(system: SystemConfig) -> Self {
        Self {
            machine: MachineConfig::paper_default(),
            system,
            scale: 1,
            seed: 2023,
            hints: HintMode::default(),
        }
    }

    /// Builder: set the hint source.
    pub fn with_hints(mut self, hints: HintMode) -> Self {
        self.hints = hints;
        self
    }

    /// Builder: set the input scale.
    pub fn with_scale(mut self, scale: u32) -> Self {
        self.scale = scale.max(1);
        self
    }

    /// Builder: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: replace the machine.
    pub fn with_machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Builder: install a fault plan on the machine under test. Every layer
    /// (allocator, NoC, caches, stream engines) picks it up from the machine
    /// config; an empty plan leaves the run byte-identical to fault-free.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not validate against the machine (see
    /// [`MachineConfig::with_faults`]).
    pub fn with_faults(mut self, faults: aff_sim_core::fault::FaultPlan) -> Self {
        self.machine = self.machine.with_faults(faults);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(SystemConfig::InCore.label(), "In-Core");
        assert_eq!(SystemConfig::NearL3.label(), "Near-L3");
        assert_eq!(
            SystemConfig::aff_alloc_default().label(),
            "Aff-Alloc(Hybrid-5)"
        );
    }

    #[test]
    fn exec_modes() {
        assert_eq!(SystemConfig::InCore.exec_mode(), ExecMode::InCore);
        assert_eq!(SystemConfig::NearL3.exec_mode(), ExecMode::NearL3);
        assert_eq!(SystemConfig::aff_alloc_default().exec_mode(), ExecMode::NearL3);
        assert!(!SystemConfig::NearL3.uses_affinity_alloc());
        assert!(SystemConfig::aff_alloc_default().uses_affinity_alloc());
    }

    #[test]
    fn builder() {
        let c = RunConfig::new(SystemConfig::InCore).with_scale(4).with_seed(9);
        assert_eq!(c.scale, 4);
        assert_eq!(c.seed, 9);
        assert_eq!(RunConfig::new(SystemConfig::InCore).with_scale(0).scale, 1);
    }

    #[test]
    fn faults_thread_through_the_machine() {
        use aff_sim_core::fault::FaultPlan;
        let c = RunConfig::new(SystemConfig::aff_alloc_default())
            .with_faults(FaultPlan::none().fail_bank(7));
        assert!(c.machine.faults.failed_banks.contains(&7));
        assert_eq!(c.machine.num_healthy_banks(), 63);
    }
}

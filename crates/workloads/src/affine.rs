//! Affine workloads: vecadd (Figs 3/4) and the Rodinia stencils of Table 3
//! (pathfinder, srad, hotspot, hotspot3D).
//!
//! Every kernel is "for each element: `output[i] = f(input[i + off...],
//! extras[i])`", repeated for a few iterations. The executor walks the index
//! space in *segments* within which every array's bank is constant, and
//! charges the engine per segment — so a 1.5M-element kernel costs ~100k
//! engine calls, not millions.
//!
//! Layouts:
//!
//! * `In-Core` / `Near-L3`: arrays on the conventional heap at arbitrary
//!   chunk offsets (a fresh process would be accidentally aligned; real
//!   heaps are not, so each array starts at a seed-derived random chunk —
//!   Fig 4 quantifies exactly this sensitivity, and
//!   [`run_vecadd_forced_delta`] pins the offset for that figure).
//! * `Aff-Alloc`: the first input allocated with intra-array row affinity
//!   (Fig 8(c)) where 2-D, everything else aligned to it (Fig 8(b)).

use crate::config::{HintMode, RunConfig, SystemConfig};
use aff_cache::private::PrivateFilter;
use aff_mem::addr::VAddr;
use aff_nsc::engine::{Metrics, SimEngine};
use aff_sim_core::config::CACHE_LINE;
use aff_sim_core::mine::{self, RegionKind};
use aff_sim_core::rng::SimRng;
use aff_sim_core::trace::Event;
use affinity_alloc::{AffineArrayReq, AffinityAllocator, AffinityHint};

/// SIMD lanes both the cores (AVX-512) and the near-stream compute threads
/// (§2.2: "SIMD ops on a spare thread") process per op.
const SIMD_LANES: u64 = 16;

/// An affine kernel description.
#[derive(Debug, Clone)]
pub struct Stencil {
    /// Kernel name.
    pub name: &'static str,
    /// Total elements.
    pub elems: u64,
    /// Element size in bytes (all arrays).
    pub elem_size: u64,
    /// Read offsets into the main input array (e.g. `[-1, 0, 1]`).
    pub offsets: Vec<i64>,
    /// Additional input arrays read at offset 0 (wall[], power[], …).
    pub extra_inputs: u32,
    /// Row stride in elements for 2-D/3-D grids (0 for 1-D).
    pub row: u64,
    /// Kernel iterations (Table 3: 8).
    pub iters: u64,
    /// Arithmetic ops per element.
    pub ops_per_elem: u64,
}

impl Stencil {
    /// vecadd: `C[i] = A[i] + B[i]` over `n` floats.
    pub fn vecadd(n: u64) -> Self {
        Self {
            name: "vecadd",
            elems: n,
            elem_size: 4,
            offsets: vec![0],
            extra_inputs: 1,
            row: 0,
            iters: 8,
            ops_per_elem: 1,
        }
    }

    /// pathfinder: 1-D dynamic programming, 3-point neighborhood + wall.
    pub fn pathfinder(entries: u64) -> Self {
        Self {
            name: "pathfinder",
            elems: entries,
            elem_size: 4,
            offsets: vec![-1, 0, 1],
            extra_inputs: 1,
            row: 0,
            iters: 8,
            ops_per_elem: 4,
        }
    }

    /// hotspot: 5-point 2-D stencil + power array on a `rows × cols` grid.
    pub fn hotspot(rows: u64, cols: u64) -> Self {
        Self {
            name: "hotspot",
            elems: rows * cols,
            elem_size: 4,
            offsets: vec![-(cols as i64), -1, 0, 1, cols as i64],
            extra_inputs: 1,
            row: cols,
            iters: 8,
            ops_per_elem: 8,
        }
    }

    /// srad: 5-point 2-D stencil + coefficient array.
    pub fn srad(rows: u64, cols: u64) -> Self {
        Self {
            name: "srad",
            elems: rows * cols,
            elem_size: 4,
            offsets: vec![-(cols as i64), -1, 0, 1, cols as i64],
            extra_inputs: 2,
            row: cols,
            iters: 8,
            ops_per_elem: 12,
        }
    }

    /// hotspot3D: 7-point 3-D stencil + power array.
    pub fn hotspot3d(nx: u64, ny: u64, nz: u64) -> Self {
        let row = nx;
        let plane = nx * ny;
        Self {
            name: "hotspot3D",
            elems: nx * ny * nz,
            elem_size: 4,
            offsets: vec![
                -(plane as i64),
                -(row as i64),
                -1,
                0,
                1,
                row as i64,
                plane as i64,
            ],
            extra_inputs: 1,
            row,
            iters: 8,
            ops_per_elem: 10,
        }
    }

    /// Total bytes across all arrays (inputs + extras + output).
    pub fn footprint(&self) -> u64 {
        self.elems * self.elem_size * (2 + u64::from(self.extra_inputs))
    }
}

/// The allocated arrays of one stencil instance.
struct Arrays {
    main: VAddr,
    extras: Vec<VAddr>,
    out: VAddr,
}

fn allocate(
    alloc: &mut AffinityAllocator,
    s: &Stencil,
    system: SystemConfig,
    seed: u64,
    hints: &HintMode,
) -> Arrays {
    let bytes = s.elems * s.elem_size;
    match (hints, system.uses_affinity_alloc()) {
        (HintMode::Annotated, true) => {
            // Hand annotations, spelled in the unified hint vocabulary: the
            // main array gets row affinity where 2-D (Fig 8(c)), everything
            // else is aligned to it element-for-element (Fig 8(b)).
            let main_hint = if s.row > 0 {
                AffinityHint::IntraStride { stride: s.row }
            } else {
                AffinityHint::None
            };
            let main = alloc
                .malloc_aff_affine(&AffineArrayReq::with_hint(s.elem_size, s.elems, &main_hint))
                .expect("main array");
            let align = AffinityHint::AlignTo { partner: main, p: 1, q: 1, x: 0 };
            let extras = (0..s.extra_inputs)
                .map(|_| {
                    alloc
                        .malloc_aff_affine(&AffineArrayReq::with_hint(s.elem_size, s.elems, &align))
                        .expect("extra array")
                })
                .collect();
            let out = alloc
                .malloc_aff_affine(&AffineArrayReq::with_hint(s.elem_size, s.elems, &align))
                .expect("output array");
            Arrays { main, extras, out }
        }
        (HintMode::Inferred(profile), true) => {
            // Replay mined hints region by region in allocation order (the
            // ordinals the profiling run assigned: main = 0, extras next,
            // output last). `hint_for` resolves partner ordinals against the
            // regions already placed.
            let num_regions = 2 + s.extra_inputs;
            let mut vas: Vec<VAddr> = Vec::with_capacity(num_regions as usize);
            for r in 0..num_regions {
                let hint = profile.hint_for(r, |ord| vas.get(ord as usize).copied(), &[]);
                let va = alloc
                    .malloc_aff_affine(&AffineArrayReq::with_hint(s.elem_size, s.elems, &hint))
                    .expect("inferred array");
                vas.push(va);
            }
            let out = vas.pop().expect("output array");
            let main = vas.remove(0);
            Arrays { main, extras: vas, out }
        }
        // `NoHints` (any system) and non-affinity systems: arbitrary heap
        // placement — skip a seed-derived number of default chunks before
        // each array, as a long-lived heap would. The annotation-free run
        // must not inherit the affine pool's accidental alignment, or the
        // floor of the comparison (and the profiling run) would be placed
        // as well as the annotated ceiling.
        _ => {
            let mut rng = SimRng::new(seed ^ 0xA11A);
            let intrlv = alloc.config().default_interleave;
            let banks = u64::from(alloc.config().num_banks());
            let mut scattered = |alloc: &mut AffinityAllocator| {
                let skip = rng.below(banks) * intrlv;
                let _pad = alloc.space_mut().heap_alloc(skip, CACHE_LINE);
                alloc.heap_alloc(bytes)
            };
            let main = scattered(alloc);
            let extras = (0..s.extra_inputs).map(|_| scattered(alloc)).collect();
            let out = scattered(alloc);
            Arrays { main, extras, out }
        }
    }
}

/// Register the stencil's regions with an installed thread miner (no-op
/// otherwise): main = 0, extras = 1.., output last — allocation order, the
/// ordinals inferred profiles are keyed by.
fn register_regions(s: &Stencil) {
    let num_regions = 2 + s.extra_inputs;
    for r in 0..num_regions {
        mine::register_region(r, RegionKind::Array, s.elem_size, s.elems);
    }
}

/// Run a stencil under `cfg`, returning the engine metrics.
pub fn run_stencil(s: &Stencil, cfg: &RunConfig) -> Metrics {
    run_stencil_opts(s, cfg, true)
}

/// [`run_stencil`] with the private-cache reuse filter switchable — the
/// `abl_reuse` ablation quantifying how much the In-Core baseline owes to
/// its L1/L2.
pub fn run_stencil_opts(s: &Stencil, cfg: &RunConfig, private_filter: bool) -> Metrics {
    let mut alloc = AffinityAllocator::with_seed(cfg.machine.clone(), cfg.system.policy(), cfg.seed);
    let arrays = allocate(&mut alloc, s, cfg.system, cfg.seed, &cfg.hints);
    register_regions(s);
    let mut engine = SimEngine::new(cfg.machine.clone());
    engine.import_residency(alloc.resident_per_bank());
    match cfg.system {
        SystemConfig::InCore => run_in_core(s, &arrays, &mut alloc, &mut engine, private_filter),
        _ => run_near_l3(s, &arrays, &mut alloc, &mut engine),
    }
    if std::env::var_os("AFF_DEBUG").is_some() {
        let acc = engine.banks().accesses_per_bank().to_vec();
        let mut top: Vec<(usize, u64)> = acc.iter().copied().enumerate().collect();
        top.sort_by_key(|&(_, a)| std::cmp::Reverse(a));
        eprintln!("top banks: {:?}", &top[..6]);
        let mut links: Vec<(usize, u64)> = engine.traffic_mut().link_flits().iter().copied().enumerate().collect();
        links.sort_by_key(|&(_, a)| std::cmp::Reverse(a));
        eprintln!("top links: {:?}", &links[..6]);
    }
    let mut m = engine.try_finish().unwrap_or_else(|e| panic!("{e}"));
    m.degradation.merge(&alloc.degradation());
    cfg.hints.stamp(&mut m);
    m
}

/// Fig 4: vecadd with the consumer array pinned `delta` banks after the
/// producers (both producers aligned). `delta = None` requests the Random
/// page layout instead.
pub fn run_vecadd_forced_delta(n: u64, delta: Option<u32>, cfg: &RunConfig) -> Metrics {
    let s = Stencil::vecadd(n);
    let mut alloc = AffinityAllocator::with_seed(cfg.machine.clone(), cfg.system.policy(), cfg.seed);
    let bytes = s.elems * s.elem_size;
    let arrays = match delta {
        Some(d) => {
            // A and B aligned at bank 0 via a 64B pool; C starts d banks on.
            let pool = alloc
                .space_mut()
                .pool_for_interleave(CACHE_LINE)
                .expect("line pool");
            let a = alloc.space_mut().pool_alloc_at(pool, 0, bytes).expect("A");
            let b = alloc.space_mut().pool_alloc_at(pool, 0, bytes).expect("B");
            let banks = cfg.machine.num_banks();
            let c = alloc
                .space_mut()
                .pool_alloc_at(pool, d % banks, bytes)
                .expect("C");
            engine_residency_note(&mut alloc, 3 * bytes);
            Arrays {
                main: a,
                extras: vec![b],
                out: c,
            }
        }
        None => {
            alloc
                .space_mut()
                .set_heap_mapping(aff_mem::space::HeapMapping::Random { seed: cfg.seed });
            let a = alloc.heap_alloc(bytes);
            let b = alloc.heap_alloc(bytes);
            let c = alloc.heap_alloc(bytes);
            Arrays {
                main: a,
                extras: vec![b],
                out: c,
            }
        }
    };
    let mut engine = SimEngine::new(cfg.machine.clone());
    engine.register_resident_spread(3 * bytes);
    match cfg.system {
        SystemConfig::InCore => run_in_core(&s, &arrays, &mut alloc, &mut engine, true),
        _ => run_near_l3(&s, &arrays, &mut alloc, &mut engine),
    }
    let mut m = engine.try_finish().unwrap_or_else(|e| panic!("{e}"));
    m.degradation.merge(&alloc.degradation());
    m
}

fn engine_residency_note(_alloc: &mut AffinityAllocator, _bytes: u64) {
    // Residency for the forced-delta layout is registered spread on the
    // engine by the caller; pool cursors do not track it.
}

/// Elements to the next chunk boundary of the array at `va` for index `idx`.
fn elems_to_boundary(alloc: &mut AffinityAllocator, va: VAddr, elem_size: u64, idx: u64) -> u64 {
    let addr = va + idx * elem_size;
    let intrlv = match alloc.space().pools().pool_of(addr) {
        Some(p) => alloc.space().pools().interleave(p),
        None => alloc.config().default_interleave,
    };
    let off = addr.raw() % intrlv;
    (intrlv - off).div_ceil(elem_size)
}

fn run_near_l3(s: &Stencil, a: &Arrays, alloc: &mut AffinityAllocator, engine: &mut SimEngine) {
    let n = s.elems;
    let iters = s.iters;
    let num_streams = (s.offsets.len() + a.extras.len() + 1) as u64;
    // Affine streams are *sliced* across banks: every bank's SEL3 receives a
    // configure packet (multicast of the stream graph) and processes the
    // interleave stripes it owns — no per-chunk migration. Coarse credits
    // flow per CREDIT_BATCH iterations.
    engine.offload_config_multicast(0, num_streams);
    let first_bank = alloc.bank_of(a.main);
    engine.credits(0, first_bank, n * iters / 64 + 1);

    // Profiling: when a co-access miner is installed on this thread, emit
    // sampled ProfileTouch events — which elements of which region one
    // logical step touches. ~1k sampled steps per run keeps mining cheap;
    // with no miner, not a single event is built.
    let mining = mine::thread_miner_installed();
    let emit_stride = (n / 1024).max(1);
    let mut next_emit = 0u64;
    let out_region = 1 + a.extras.len() as u32;

    let mut i = 0u64;
    let mut banks_scratch: Vec<u32> = Vec::with_capacity(s.offsets.len() + 1);
    // Bank service is accumulated in bytes and charged as lines once per
    // bank at the end: per-segment ceil-rounding would double-count the
    // boundary lines that 1-element segments share with their neighbors.
    let num_banks = engine.config().num_banks() as usize;
    let mut read_bytes = vec![0u64; num_banks];
    let mut reuse_bytes = vec![0u64; num_banks];
    let mut write_bytes = vec![0u64; num_banks];
    while i < n {
        // Segment length: until any array's bank changes. Out-of-range
        // neighbors (stencil boundary) contribute nothing; a below-range
        // offset only constrains the segment to where it enters range.
        let mut seg = n - i;
        seg = seg.min(elems_to_boundary(alloc, a.out, s.elem_size, i));
        for &off in &s.offsets {
            let j = i as i64 + off;
            if j < 0 {
                seg = seg.min((-j) as u64);
            } else if (j as u64) < n {
                seg = seg.min(elems_to_boundary(alloc, a.main, s.elem_size, j as u64));
            }
        }
        for &x in &a.extras {
            seg = seg.min(elems_to_boundary(alloc, x, s.elem_size, i));
        }
        let seg = seg.max(1);

        if mining && i >= next_emit {
            next_emit = i + emit_stride;
            for &off in &s.offsets {
                let j = i as i64 + off;
                if j >= 0 && (j as u64) < n {
                    engine.record(Event::ProfileTouch {
                        region: 0,
                        elem: j as u64,
                        step: i,
                    });
                }
            }
            for r in 0..a.extras.len() as u32 {
                engine.record(Event::ProfileTouch {
                    region: 1 + r,
                    elem: i,
                    step: i,
                });
            }
            engine.record(Event::ProfileTouch {
                region: out_region,
                elem: i,
                step: i,
            });
        }

        let out_bank = alloc.bank_of(a.out + i * s.elem_size);
        let seg_lines = (seg * s.elem_size).div_ceil(CACHE_LINE);

        // The main array's offset streams coalesce per bank: a line already
        // at a producer bank's SEL3 is forwarded once and serves every
        // offset window the consumer needs from it.
        banks_scratch.clear();
        for &off in &s.offsets {
            let j = i as i64 + off;
            if j < 0 || (j as u64) >= n {
                continue; // boundary element: neighbor does not exist
            }
            let b = alloc.bank_of(a.main + (j as u64) * s.elem_size);
            if !banks_scratch.contains(&b) {
                banks_scratch.push(b);
            }
        }
        for (k, &b) in banks_scratch.iter().enumerate() {
            engine.forward(b, out_bank, CACHE_LINE, seg_lines * iters);
            if k == 0 {
                read_bytes[b as usize] += seg * s.elem_size * iters;
            } else {
                // The sibling offset stream fetched these lines one row ago;
                // they are still resident.
                reuse_bytes[b as usize] += seg * s.elem_size * iters;
            }
        }
        for &x in &a.extras {
            let b = alloc.bank_of(x + i * s.elem_size);
            engine.forward(b, out_bank, CACHE_LINE, seg_lines * iters);
            read_bytes[b as usize] += seg * s.elem_size * iters;
        }
        // The consumer computes (SIMD) and writes locally.
        engine.se_ops(
            out_bank,
            (seg * s.ops_per_elem * iters).div_ceil(SIMD_LANES),
        );
        write_bytes[out_bank as usize] += seg * s.elem_size * iters;
        i += seg;
    }
    for b in 0..num_banks {
        engine.bank_read_lines(b as u32, read_bytes[b].div_ceil(CACHE_LINE));
        engine.bank_read_lines_reuse(b as u32, reuse_bytes[b].div_ceil(CACHE_LINE));
        engine.bank_write_lines(b as u32, write_bytes[b].div_ceil(CACHE_LINE));
    }
}

fn run_in_core(
    s: &Stencil,
    a: &Arrays,
    alloc: &mut AffinityAllocator,
    engine: &mut SimEngine,
    private_filter: bool,
) {
    let n = s.elems;
    let cores = u64::from(engine.config().num_banks());
    let filter = if private_filter {
        PrivateFilter::new(engine.config())
    } else {
        PrivateFilter::disabled(engine.config())
    };
    // Does one core's slice of all arrays survive in L2 across iterations?
    let arrays = 2 + a.extras.len() as u64;
    let slice_bytes = (n / cores).max(1) * s.elem_size * arrays;
    let effective_iters = if slice_bytes <= engine.config().l2_bytes {
        1 // everything after the first sweep hits in L2
    } else {
        s.iters
    };
    let spatial = filter.is_enabled();

    // Reads: each input array swept once per effective iteration at line
    // granularity (the private hierarchy absorbs neighbouring offsets).
    let mut reads: Vec<(VAddr, bool)> = vec![(a.main, true), (a.out, false)];
    for &x in &a.extras {
        reads.push((x, true));
    }
    for (va, is_read) in reads {
        let mut i = 0u64;
        while i < n {
            let seg = (n - i)
                .min(elems_to_boundary(alloc, va, s.elem_size, i))
                .max(1);
            let bank = alloc.bank_of(va + i * s.elem_size);
            let core = ((i * cores) / n) as u32;
            let lines = if spatial {
                (seg * s.elem_size).div_ceil(CACHE_LINE)
            } else {
                seg
            };
            if is_read {
                engine.core_read_lines(core, bank, lines * effective_iters);
            } else {
                engine.core_write_lines(core, bank, lines * effective_iters);
            }
            i += seg;
        }
    }
    // Private hits: element accesses the filter absorbed.
    let total_elem_accesses = n * s.iters * (s.offsets.len() as u64 + arrays - 1);
    engine.private_hits(total_elem_accesses);
    engine.core_ops((n * s.iters * s.ops_per_elem).div_ceil(SIMD_LANES));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(system: SystemConfig) -> RunConfig {
        RunConfig::new(system).with_seed(7)
    }

    #[test]
    fn aligned_vecadd_has_near_zero_data_traffic() {
        let m = run_vecadd_forced_delta(64 * 1024, Some(0), &cfg(SystemConfig::NearL3));
        assert_eq!(m.hop_flits[1], 0, "aligned forwarding must be local");
    }

    #[test]
    fn fig4_delta_sweep_shape() {
        // Table 3 size: 1.5M entries — small inputs fit in the private L2
        // and In-Core legitimately wins, which is not the Fig 4 regime.
        let n = 1_500_000;
        let d0 = run_vecadd_forced_delta(n, Some(0), &cfg(SystemConfig::NearL3));
        let d32 = run_vecadd_forced_delta(n, Some(32), &cfg(SystemConfig::NearL3));
        let rnd = run_vecadd_forced_delta(n, None, &cfg(SystemConfig::NearL3));
        let incore = run_vecadd_forced_delta(n, Some(0), &cfg(SystemConfig::InCore));
        // Aligned beats bisection beats nothing; random sits between.
        assert!(d0.cycles < d32.cycles, "Δ0 must beat Δ32");
        assert!(d0.cycles < rnd.cycles, "Δ0 must beat Random");
        assert!(rnd.cycles < d32.cycles, "Random avoids the pathological Δ32");
        // NDC (any Δ) still beats In-Core, as in Fig 4.
        assert!(d32.cycles < incore.cycles, "even Δ32 NDC beats In-Core");
    }

    #[test]
    fn aff_alloc_beats_near_l3_on_stencils() {
        let s = Stencil::hotspot(128, 256);
        let near = run_stencil(&s, &cfg(SystemConfig::NearL3));
        let aff = run_stencil(&s, &cfg(SystemConfig::aff_alloc_default()));
        assert!(
            aff.cycles < near.cycles,
            "aff {} vs near {}",
            aff.cycles,
            near.cycles
        );
        assert!(aff.total_hop_flits < near.total_hop_flits);
    }

    #[test]
    fn ndc_beats_in_core_on_stencils() {
        let s = Stencil::pathfinder(1_500_000);
        let incore = run_stencil(&s, &cfg(SystemConfig::InCore));
        let aff = run_stencil(&s, &cfg(SystemConfig::aff_alloc_default()));
        assert!(aff.cycles < incore.cycles);
    }

    #[test]
    fn stencil_specs_match_table3() {
        assert_eq!(Stencil::pathfinder(1_500_000).elems, 1_500_000);
        assert_eq!(Stencil::srad(1024, 2048).elems, 1024 * 2048);
        assert_eq!(Stencil::hotspot(2048, 1024).elems, 2048 * 1024);
        assert_eq!(Stencil::hotspot3d(256, 1024, 8).elems, 256 * 1024 * 8);
        assert_eq!(Stencil::hotspot3d(256, 1024, 8).offsets.len(), 7);
    }

    #[test]
    fn footprint_math() {
        let s = Stencil::vecadd(1000);
        assert_eq!(s.footprint(), 3 * 4 * 1000);
    }

    #[test]
    fn closed_loop_recovers_stencil_annotations() {
        use affinity_alloc::{AffinityProfile, InferredHint};
        use std::sync::Arc;

        // Phase 1: profile an annotation-free run with the miner installed.
        let s = Stencil::hotspot(128, 256);
        let base = cfg(SystemConfig::aff_alloc_default());
        mine::install_thread_miner();
        let none = run_stencil(&s, &base.clone().with_hints(HintMode::NoHints));
        let mined = mine::take_thread_miner().expect("miner was installed");
        let profile = AffinityProfile::infer(&mined);

        // The mined hints are exactly the hand annotations: main = row
        // stride, extras and output aligned 1:1 to main.
        assert_eq!(
            profile.region_hint(0).map(|h| &h.hint),
            Some(&InferredHint::IntraStride { stride: 256 }),
            "main array must recover the row stride"
        );
        for r in [1u32, 2] {
            match profile.region_hint(r).map(|h| &h.hint) {
                Some(&InferredHint::AlignTo { partner: 0, p: 1, q: 1, x: 0 }) => {}
                other => panic!("region {r}: expected 1:1 alignment to main, got {other:?}"),
            }
        }

        // Phase 2: replay. Inferred placement must match annotated placement
        // in performance, and both beat the unhinted floor.
        let annotated = run_stencil(&s, &base);
        let inferred =
            run_stencil(&s, &base.clone().with_hints(HintMode::Inferred(Arc::new(profile))));
        assert_eq!(
            inferred.cycles, annotated.cycles,
            "inferred hints must reproduce the annotated run"
        );
        assert!(inferred.cycles < none.cycles, "hints must beat no hints");
        assert_eq!(inferred.hint_source.as_deref(), Some("inferred"));
        assert!(inferred.inferred_hints >= 3);
        assert_eq!(annotated.hint_source, None, "annotated runs stay unstamped");
        assert_eq!(none.hint_source.as_deref(), Some("none"));
    }

    #[test]
    fn no_hints_matches_near_l3_placement() {
        // The annotation-free configuration under Aff-Alloc uses the same
        // scattered-heap layout as Near-L3 — profiling sees honest placement.
        let s = Stencil::hotspot(64, 128);
        let none = run_stencil(
            &s,
            &cfg(SystemConfig::aff_alloc_default()).with_hints(HintMode::NoHints),
        );
        let near = run_stencil(&s, &cfg(SystemConfig::NearL3));
        assert_eq!(none.cycles, near.cycles);
    }
}

//! Graph workloads: pr_push, pr_pull, bfs (push / pull / switching) and
//! sssp — the linked-CSR family of Table 3.
//!
//! Layouts per system configuration:
//!
//! * `In-Core` / `Near-L3`: classic CSR on the heap, one global work queue.
//! * `Aff-Alloc`: partitioned vertex properties (Fig 9), **linked CSR**
//!   (Fig 11) placed by the allocator's bank-select policy, and a spatially
//!   distributed queue.
//!
//! The executors run the *real* algorithms on the logical graph (BFS
//! parents are genuinely discovered, SSSP distances genuinely relax) while
//! charging every memory event to the [`SimEngine`]; Fig 17/18's
//! per-iteration statistics fall out of the traversal itself.

use crate::config::{HintMode, RunConfig, SystemConfig};
use aff_ds::csr::{ChunkedCsr, CsrLayout};
use aff_ds::graph::Graph;
use aff_ds::layout::{AllocMode, VertexArray};
use aff_ds::linked_csr::LinkedCsr;
use aff_ds::pqueue::SpatialPriorityQueue;
use aff_ds::queue::{GlobalQueue, SpatialQueue};
use aff_nsc::engine::{Metrics, SimEngine};
use aff_sim_core::config::CACHE_LINE;
use aff_sim_core::mine::{self, RegionKind};
use aff_sim_core::trace::Event;
use affinity_alloc::{AffinityAllocator, InferredHint};
use serde::{Deserialize, Serialize};

/// Probes already in flight when a pull-scan's dynamic break resolves.
/// Both the OOO core (branch-predicted loop exit, ROB run-ahead) and the
/// decoupled stream engine (§2.2: streams run ahead of the consuming
/// computation) issue a batch of speculative probes before the first
/// visited-parent answer can stop the scan.
pub const PULL_SPECULATION: usize = 8;

/// A suitable BFS/SSSP source: the highest-degree vertex (GAP samples
/// non-isolated sources; vertex 0 of a permuted Kronecker graph is often
/// isolated).
pub fn pick_source(g: &Graph) -> u32 {
    (0..g.num_vertices())
        .max_by_key(|&v| g.degree(v))
        .unwrap_or(0)
}

/// Traversal direction of one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Top-down: propagate updates to out-neighbors with atomics.
    Push,
    /// Bottom-up: query in-neighbors and reduce.
    Pull,
}

/// Per-iteration BFS statistics (Fig 17/18).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterStat {
    /// Direction chosen.
    pub dir: Direction,
    /// Vertices newly visited during this iteration ("Active Nodes").
    pub active: u64,
    /// Total visited after this iteration ("Visited Nodes").
    pub visited: u64,
    /// Out-edges of the vertices activated this iteration ("Scout Edges").
    pub scout_edges: u64,
    /// Edges examined while executing the iteration (time proxy, Fig 18).
    pub examined_edges: u64,
}

/// Result of a graph-workload run.
#[derive(Debug, Clone)]
pub struct GraphRun {
    /// Engine metrics.
    pub metrics: Metrics,
    /// Per-iteration stats (BFS and SSSP record these).
    pub iters: Vec<IterStat>,
}

/// Direction-selection policy for BFS (§7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectionPolicy {
    /// Always push.
    PushOnly,
    /// Always pull (after the first iteration, which must push from the
    /// source).
    PullOnly,
    /// GAP's heuristic: push→pull when scout edges exceed |E|/14; pull→push
    /// when awake vertices drop below |V|/24.
    GapSwitch,
    /// The paper's Aff-Alloc policy: push→pull when visited > 40% *and*
    /// scout edges > 6%; pull→push when awake < 25% (§7.2).
    AffSwitch,
}

impl DirectionPolicy {
    /// The default policy for a system configuration.
    pub fn default_for(system: SystemConfig) -> Self {
        match system {
            SystemConfig::AffAlloc(_) => DirectionPolicy::AffSwitch,
            _ => DirectionPolicy::GapSwitch,
        }
    }

    fn choose(
        &self,
        prev: Direction,
        visited: u64,
        awake: u64,
        scout_edges: u64,
        n: u64,
        m: u64,
    ) -> Direction {
        match self {
            DirectionPolicy::PushOnly => Direction::Push,
            DirectionPolicy::PullOnly => Direction::Pull,
            DirectionPolicy::GapSwitch => match prev {
                Direction::Push if scout_edges > m / 14 => Direction::Pull,
                Direction::Pull if awake < n / 24 => Direction::Push,
                d => d,
            },
            DirectionPolicy::AffSwitch => match prev {
                Direction::Push if visited * 100 > n * 40 && scout_edges * 100 > m * 6 => {
                    Direction::Pull
                }
                Direction::Pull if awake * 100 < n * 25 => Direction::Push,
                d => d,
            },
        }
    }
}

/// How edges are placed.
enum EdgeLayout {
    Csr(CsrLayout),
    /// Fig 6's oracle-chunked CSR (bank per chunk, edges still contiguous).
    Chunked(ChunkedCsr),
    Linked(LinkedCsr),
}

enum QueueKind {
    Global(GlobalQueue),
    Spatial(SpatialQueue),
}

/// A fully laid-out graph-workload instance.
pub struct GraphInstance {
    graph: Graph,
    props: VertexArray,
    edges: EdgeLayout,
    queue: QueueKind,
    system: SystemConfig,
    engine: SimEngine,
    alloc: AffinityAllocator,
    /// Reusable scratch for [`Self::scan_edges_prefix`]: callers take it,
    /// iterate, and put it back, so the per-vertex edge sweep never
    /// allocates after warm-up.
    edge_scratch: Vec<(u32, u32)>,
    /// Same for the per-vertex weight expansion in the SSSP kernels.
    weight_scratch: Vec<u32>,
    /// Where this instance's hints came from (stamped onto the metrics).
    hints: HintMode,
    /// A thread miner is installed: emit sampled ProfileTouch events.
    mining: bool,
    /// Sample every `mine_stride`-th vertex's edge scan when mining.
    mine_stride: u32,
}

impl GraphInstance {
    /// Lay out `graph` per `cfg` and prepare an engine.
    ///
    /// Region ordinals under the affinity system are stable across hint
    /// modes — 0 = the property array, 1 = the linked-CSR edge nodes — so a
    /// profile mined from an unhinted run keys the annotated structures.
    pub fn new(graph: Graph, cfg: &RunConfig) -> Self {
        let mut alloc =
            AffinityAllocator::with_seed(cfg.machine.clone(), cfg.system.policy(), cfg.seed);
        let n = u64::from(graph.num_vertices());
        let (edges, queue, props) = if cfg.system.uses_affinity_alloc() {
            let props = match &cfg.hints {
                HintMode::Annotated => {
                    VertexArray::new(&mut alloc, n, 8, AllocMode::Affinity).expect("prop array")
                }
                HintMode::NoHints => {
                    VertexArray::new(&mut alloc, n, 8, AllocMode::Unhinted).expect("prop array")
                }
                HintMode::Inferred(p) => {
                    let hint = p.hint_for(0, |_| None, &[]);
                    VertexArray::with_hint(&mut alloc, n, 8, &hint).expect("prop array")
                }
            };
            // Chain nodes keep the linked-CSR *structure* in every hint mode
            // (the ordinals and traversal order must match); what the hints
            // decide is whether nodes carry affinity addresses.
            let chained = match &cfg.hints {
                HintMode::Annotated => true,
                HintMode::NoHints => false,
                HintMode::Inferred(p) => matches!(
                    p.region_hint(1).map(|h| &h.hint),
                    Some(InferredHint::Chain)
                ),
            };
            let linked = if chained {
                LinkedCsr::build(&mut alloc, &graph, &props).expect("linked CSR")
            } else {
                LinkedCsr::build_unhinted(&mut alloc, &graph).expect("linked CSR")
            };
            mine::register_region(0, RegionKind::Array, 8, n);
            mine::register_region(1, RegionKind::Nodes, CACHE_LINE, linked.num_nodes() as u64);
            let parts = cfg.machine.num_banks().min(graph.num_vertices());
            // The queue aligns to props only when props is an affine-
            // registered array; unhinted layouts get the same structure with
            // the alignment annotations withheld.
            let q = if props.mode() == AllocMode::Affinity {
                SpatialQueue::build(&mut alloc, &props, parts).expect("spatial queue")
            } else {
                SpatialQueue::build_unhinted(&mut alloc, n, props.elem_size(), parts)
                    .expect("spatial queue")
            };
            (EdgeLayout::Linked(linked), QueueKind::Spatial(q), props)
        } else {
            let props = VertexArray::new(&mut alloc, n, 8, AllocMode::Baseline).expect("props");
            let csr = CsrLayout::build(&mut alloc, &graph, AllocMode::Baseline).expect("CSR");
            let q = GlobalQueue::new(&mut alloc, n).expect("global queue");
            (EdgeLayout::Csr(csr), QueueKind::Global(q), props)
        };
        let mut engine = SimEngine::new(cfg.machine.clone());
        engine.import_residency(alloc.resident_per_bank());
        Self {
            graph,
            props,
            edges,
            queue,
            system: cfg.system,
            engine,
            alloc,
            edge_scratch: Vec::new(),
            weight_scratch: Vec::new(),
            hints: cfg.hints.clone(),
            mining: mine::thread_miner_installed(),
            mine_stride: (n as u32 / 1024).max(1),
        }
    }

    /// Fig 6 variant: CSR with the chunk oracle deciding edge banks.
    pub fn with_chunk_oracle(graph: Graph, cfg: &RunConfig, chunk_bytes: u64) -> Self {
        let mut alloc =
            AffinityAllocator::with_seed(cfg.machine.clone(), cfg.system.policy(), cfg.seed);
        let n = u64::from(graph.num_vertices());
        let props = VertexArray::new(&mut alloc, n, 8, AllocMode::Affinity).expect("props");
        let oracle = ChunkedCsr::build(
            alloc.topo(),
            &graph,
            &(0..n).map(|v| props.bank_of(v)).collect::<Vec<_>>(),
            chunk_bytes,
            0.02,
        );
        let parts = cfg.machine.num_banks().min(graph.num_vertices());
        let q = SpatialQueue::build(&mut alloc, &props, parts).expect("spatial queue");
        let mut engine = SimEngine::new(cfg.machine.clone());
        engine.import_residency(alloc.resident_per_bank());
        engine.register_resident_spread(graph.num_edges() as u64 * 4);
        Self {
            graph,
            props,
            edges: EdgeLayout::Chunked(oracle),
            queue: QueueKind::Spatial(q),
            system: cfg.system,
            engine,
            alloc,
            edge_scratch: Vec::new(),
            weight_scratch: Vec::new(),
            hints: cfg.hints.clone(),
            mining: false,
            mine_stride: 1,
        }
    }

    /// The logical graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    fn prop_bank(&self, v: u32) -> u32 {
        self.props.bank_of(u64::from(v))
    }

    fn in_core(&self) -> bool {
        matches!(self.system, SystemConfig::InCore)
    }

    fn core_of(&self, v: u32) -> u32 {
        let n = u64::from(self.graph.num_vertices());
        let cores = u64::from(self.engine.config().num_banks());
        ((u64::from(v) * cores) / n.max(1)) as u32
    }

    /// Sweep `u`'s adjacency, collecting `(edge_bank, target)` pairs and
    /// charging edge-fetch costs (line reads, stream migrations, in-core
    /// pointer-chasing latency). Returns the pairs in the instance's scratch
    /// buffer — callers iterate and hand it back via `self.edge_scratch`.
    fn scan_edges(&mut self, u: u32) -> Vec<(u32, u32)> {
        self.scan_edges_prefix(u, usize::MAX)
    }

    /// Like [`Self::scan_edges`] but fetches only the first `limit` edges —
    /// pull-direction kernels terminate a vertex's scan at the first visited
    /// in-neighbor, and the dynamic break (Fig 2(b)) stops the stream, so
    /// only the scanned prefix is charged.
    fn scan_edges_prefix(&mut self, u: u32, limit: usize) -> Vec<(u32, u32)> {
        let core = self.core_of(u);
        let in_core = self.in_core();
        let esz = if self.graph.is_weighted() { 8 } else { 4 };
        let mut out = std::mem::take(&mut self.edge_scratch);
        out.clear();
        out.reserve((self.graph.degree(u) as usize).min(limit));
        let engine = &mut self.engine;
        let graph = &self.graph;
        match &self.edges {
            EdgeLayout::Csr(csr) => {
                let base = graph.offset_of(u);
                let mut line_start = u64::MAX;
                for (i, &v) in graph.neighbors(u).iter().take(limit).enumerate() {
                    let e = base + i as u64;
                    let bank = csr.bank_of_edge(e);
                    let line = e * esz / CACHE_LINE;
                    if line != line_start {
                        line_start = line;
                        if in_core {
                            engine.core_read_lines(core, bank, 1);
                        } else {
                            engine.bank_read_lines(bank, 1);
                        }
                    }
                    out.push((bank, v));
                }
            }
            EdgeLayout::Chunked(oracle) => {
                let base = graph.offset_of(u);
                let mut line_start = u64::MAX;
                let mut prev_bank = None;
                for (i, &v) in graph.neighbors(u).iter().take(limit).enumerate() {
                    let e = base + i as u64;
                    let bank = oracle.bank_of_edge(e);
                    let line = e * esz / CACHE_LINE;
                    if line != line_start {
                        line_start = line;
                        if in_core {
                            engine.core_read_lines(core, bank, 1);
                        } else {
                            engine.bank_read_lines(bank, 1);
                            if let Some(p) = prev_bank {
                                if p != bank {
                                    engine.migrate(p, bank, 1);
                                }
                            }
                            prev_bank = Some(bank);
                        }
                    }
                    out.push((bank, v));
                }
            }
            EdgeLayout::Linked(linked) => {
                let mut prev_bank = None;
                // Profiling: one sampled step per scanned vertex — the chain
                // nodes it walks (line-granular elements) and the property
                // elements its edges point at.
                let emit = self.mining && u.is_multiple_of(self.mine_stride);
                for node in linked.chain_of(u) {
                    if (node.lo as usize) >= limit {
                        break;
                    }
                    let bank = node.bank;
                    if emit {
                        engine.record(Event::ProfileTouch {
                            region: 1,
                            elem: node.va.raw() / CACHE_LINE,
                            step: u64::from(u),
                        });
                        let hi = (node.hi as usize).min(limit);
                        for &v in &graph.neighbors(u)[node.lo as usize..hi] {
                            engine.record(Event::ProfileTouch {
                                region: 0,
                                elem: u64::from(v),
                                step: u64::from(u),
                            });
                        }
                    }
                    if in_core {
                        engine.core_read_lines(core, bank, 1);
                        // Pointer chasing from the core is serialized: a full
                        // round trip per node.
                        let hops = 2 * u64::from(engine.topo().manhattan(core, bank));
                        engine.chain(hops, 1);
                    } else {
                        engine.bank_read_lines(bank, 1);
                        if let Some(p) = prev_bank {
                            if p != bank {
                                engine.migrate(p, bank, 1);
                            }
                        }
                        prev_bank = Some(bank);
                    }
                    let hi = (node.hi as usize).min(limit);
                    for &v in &graph.neighbors(u)[node.lo as usize..hi] {
                        out.push((bank, v));
                    }
                }
            }
        }
        out
    }

    /// Expand `u`'s edge weights into the reusable weight scratch (unit
    /// weights when the graph is unweighted). Same take-and-return protocol
    /// as [`Self::scan_edges_prefix`].
    fn weights_scratch(&mut self, u: u32) -> Vec<u32> {
        let mut w = std::mem::take(&mut self.weight_scratch);
        w.clear();
        match self.graph.weights_of(u) {
            Some(ws) => w.extend_from_slice(ws),
            None => w.resize(self.graph.degree(u) as usize, 1),
        }
        w
    }

    /// Charge one push-style update of `target`'s property from `from_bank`
    /// (an atomic CAS / fetch-min / fetch-add).
    fn push_update(&mut self, from_bank: u32, core: u32, target: u32, contended: bool) {
        let pb = self.prop_bank(target);
        if self.in_core() {
            self.engine.core_atomic(core, pb, contended, 1);
        } else {
            self.engine.remote_atomic(from_bank, pb, 1);
        }
    }

    /// Charge a pull-style read of `target`'s property into `from_bank`.
    fn pull_read(&mut self, from_bank: u32, core: u32, target: u32) {
        let pb = self.prop_bank(target);
        if self.in_core() {
            self.engine.core_read_lines(core, pb, 1);
        } else {
            self.engine.indirect(from_bank, pb, 8, 1);
        }
    }

    /// Charge a frontier push of vertex `v` discovered at `from_bank`.
    fn queue_push(&mut self, from_bank: u32, core: u32, v: u32) {
        let (tail_bank, slot_bank) = match &mut self.queue {
            QueueKind::Global(q) => q.push(v),
            QueueKind::Spatial(q) => q.push(v),
        };
        if self.in_core() {
            self.engine.core_atomic(core, tail_bank, true, 1);
            self.engine.core_write_lines(core, slot_bank, 1);
        } else {
            self.engine.remote_atomic(from_bank, tail_bank, 1);
            if tail_bank != slot_bank {
                self.engine.indirect(tail_bank, slot_bank, 4, 1);
            } else {
                self.engine.bank_write_lines(slot_bank, 1);
            }
        }
    }

    fn reset_queue(&mut self) {
        match &mut self.queue {
            QueueKind::Global(q) => q.reset(),
            QueueKind::Spatial(q) => q.reset(),
        }
    }

    fn charge_iteration_overheads(&mut self, iterations: u64) {
        self.engine.offload_config_multicast(0, 4);
        self.engine.credits(0, 0, iterations);
    }

    /// Consume the instance, producing metrics. The allocator's degradation
    /// (excluded banks, fallback-chain use) is folded into the engine's.
    pub fn finish(self) -> Metrics {
        let mut m = self.engine.try_finish().unwrap_or_else(|e| panic!("{e}"));
        m.degradation.merge(&self.alloc.degradation());
        self.hints.stamp(&mut m);
        m
    }

    // ---------------- algorithms ----------------

    /// PageRank, push variant: one sweep where every vertex scatters its
    /// contribution to its out-neighbors' ranks with remote atomics.
    pub fn run_pr_push(mut self) -> GraphRun {
        let n = self.graph.num_vertices();
        let m = self.graph.num_edges() as u64;
        self.charge_iteration_overheads(m);
        self.engine.begin_phase();
        for u in 0..n {
            let core = self.core_of(u);
            // Read own contribution (local to the vertex's bank / core).
            if self.in_core() {
                self.engine.private_hits(1);
            } else {
                let pb = self.prop_bank(u);
                self.engine.bank_read_lines(pb, 1);
            }
            let contended = true; // all edges active in PR
            let edges = self.scan_edges(u);
            for &(bank, v) in &edges {
                self.push_update(bank, core, v, contended);
            }
            self.edge_scratch = edges;
        }
        self.engine.end_phase();
        let metrics = self.finish();
        GraphRun {
            metrics,
            iters: Vec::new(),
        }
    }

    /// PageRank, pull variant: every vertex gathers its in-neighbors'
    /// contributions and reduces locally.
    pub fn run_pr_pull(mut self) -> GraphRun {
        let n = self.graph.num_vertices();
        let m = self.graph.num_edges() as u64;
        self.charge_iteration_overheads(m);
        for u in 0..n {
            let core = self.core_of(u);
            let edges = self.scan_edges(u);
            for &(bank, v) in &edges {
                self.pull_read(bank, core, v);
            }
            self.edge_scratch = edges;
            // Local reduction + write of own rank.
            if self.in_core() {
                self.engine.core_ops(self.graph.degree(u));
                let pb = self.prop_bank(u);
                self.engine.core_write_lines(core, pb, 1);
            } else {
                let pb = self.prop_bank(u);
                self.engine.se_ops(pb, self.graph.degree(u));
                self.engine.bank_write_lines(pb, 1);
            }
        }
        let metrics = self.finish();
        GraphRun {
            metrics,
            iters: Vec::new(),
        }
    }

    /// BFS from `source` with the given direction policy. Returns metrics
    /// plus per-iteration statistics (Figs 14, 17, 18).
    pub fn run_bfs(mut self, source: u32, policy: DirectionPolicy) -> GraphRun {
        let n = u64::from(self.graph.num_vertices());
        let m = self.graph.num_edges() as u64;
        self.charge_iteration_overheads(m.max(1));
        let mut parent: Vec<Option<u32>> = vec![None; n as usize];
        parent[source as usize] = Some(source);
        // Level marks let pull-iterations test "visited before this
        // iteration" in O(1).
        let mut level = vec![u32::MAX; n as usize];
        level[source as usize] = 0;
        let mut frontier = vec![source];
        let mut visited = 1u64;
        let mut stats = Vec::new();
        let mut dir = Direction::Push;
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            self.reset_queue();
            self.engine.begin_phase();
            let awake = n - visited;
            let scout: u64 = frontier.iter().map(|&u| self.graph.degree(u)).sum();
            dir = policy.choose(dir, visited, awake, scout, n, m);
            let mut next = Vec::new();
            let mut examined = 0u64;
            match dir {
                Direction::Push => {
                    let contended = frontier.len() as u64 * 100 > n;
                    for &u in &frontier {
                        let core = self.core_of(u);
                        let edges = self.scan_edges(u);
                        examined += edges.len() as u64;
                        for &(bank, v) in &edges {
                            // The CAS executes near P[v] either way.
                            self.push_update(bank, core, v, contended);
                            if parent[v as usize].is_none() {
                                parent[v as usize] = Some(u);
                                level[v as usize] = depth;
                                next.push(v);
                                self.queue_push(self.prop_bank(v), core, v);
                            }
                        }
                        self.edge_scratch = edges;
                    }
                }
                Direction::Pull => {
                    for v in 0..n as u32 {
                        if parent[v as usize].is_some() {
                            continue;
                        }
                        let core = self.core_of(v);
                        // The dynamic break stops the edge stream at the
                        // first visited in-neighbor: only that prefix is
                        // fetched and only that prefix pays indirect reads.
                        let nb = self.graph.neighbors(v);
                        let prefix = nb
                            .iter()
                            .position(|&u| level[u as usize] < depth)
                            .map(|p| p + 1)
                            .unwrap_or(nb.len());
                        let found = (prefix <= nb.len() && prefix > 0)
                            .then(|| nb[prefix - 1])
                            .filter(|&u| level[u as usize] < depth);
                        // Speculative overshoot: the break cannot stop
                        // probes already in flight.
                        let charged = prefix.max(PULL_SPECULATION).min(nb.len());
                        let edges = self.scan_edges_prefix(v, charged);
                        for &(bank, u) in &edges {
                            examined += 1;
                            self.pull_read(bank, core, u);
                        }
                        self.edge_scratch = edges;
                        if let Some(u) = found {
                            parent[v as usize] = Some(u);
                            level[v as usize] = depth;
                            next.push(v);
                        }
                    }
                }
            }
            visited += next.len() as u64;
            stats.push(IterStat {
                dir,
                active: next.len() as u64,
                visited,
                scout_edges: next.iter().map(|&v| self.graph.degree(v)).sum(),
                examined_edges: examined,
            });
            self.engine.end_phase();
            frontier = next;
        }
        let metrics = self.finish();
        GraphRun {
            metrics,
            iters: stats,
        }
    }

    /// SSSP by frontier-based label correcting (Bellman-Ford with a work
    /// queue) — weighted edges relax neighbors with remote fetch-min.
    pub fn run_sssp(mut self, source: u32) -> GraphRun {
        let n = self.graph.num_vertices();
        let m = self.graph.num_edges() as u64;
        self.charge_iteration_overheads(m.max(1));
        let mut dist = vec![u64::MAX; n as usize];
        dist[source as usize] = 0;
        let mut frontier = vec![source];
        let mut in_next = vec![false; n as usize];
        let mut stats = Vec::new();
        let mut rounds = 0;
        while !frontier.is_empty() && rounds < 64 {
            rounds += 1;
            self.reset_queue();
            self.engine.begin_phase();
            let mut next: Vec<u32> = Vec::new();
            let mut examined = 0u64;
            let contended = frontier.len() as u64 * 100 > u64::from(n);
            for &u in &frontier {
                let core = self.core_of(u);
                let du = dist[u as usize];
                let weights = self.weights_scratch(u);
                let edges = self.scan_edges(u);
                examined += edges.len() as u64;
                for (i, &(bank, v)) in edges.iter().enumerate() {
                    self.push_update(bank, core, v, contended);
                    let nd = du.saturating_add(u64::from(weights[i]));
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        if !in_next[v as usize] {
                            in_next[v as usize] = true;
                            next.push(v);
                            self.queue_push(self.prop_bank(v), core, v);
                        }
                    }
                }
                self.edge_scratch = edges;
                self.weight_scratch = weights;
            }
            for &v in &next {
                in_next[v as usize] = false;
            }
            let visited = dist.iter().filter(|&&d| d != u64::MAX).count() as u64;
            stats.push(IterStat {
                dir: Direction::Push,
                active: next.len() as u64,
                visited,
                scout_edges: next.iter().map(|&v| self.graph.degree(v)).sum(),
                examined_edges: examined,
            });
            self.engine.end_phase();
            frontier = next;
        }
        let metrics = self.finish();
        GraphRun {
            metrics,
            iters: stats,
        }
    }

    /// SSSP on a relaxed priority queue (lazy-deletion Dijkstra): the
    /// ablation contrasting the FIFO frontier of [`Self::run_sssp`] with
    /// §4.2's MultiQueues-style spatially distributed priority queue. Under
    /// `Aff-Alloc` the queue is one sub-heap per partition with bank-local
    /// pushes; baselines pay remote accesses to a single global heap.
    pub fn run_sssp_priority(mut self, source: u32) -> GraphRun {
        let n = self.graph.num_vertices();
        let m = self.graph.num_edges() as u64;
        self.charge_iteration_overheads(m.max(1));
        let in_core = self.in_core();

        // The queue layout: spatial per-partition heaps for Aff-Alloc, one
        // global heap (at the bank of a heap-allocated anchor) otherwise.
        // The spatial heaps align to props — an annotation; unhinted layouts
        // fall back to the global heap like the baselines.
        let spatial_pq = if self.system.uses_affinity_alloc()
            && self.props.mode() == AllocMode::Affinity
        {
            let parts = self.engine.config().num_banks().min(n);
            Some(
                SpatialPriorityQueue::build(&mut self.alloc, &self.props, parts, 11)
                    .expect("spatial priority queue"),
            )
        } else {
            None
        };
        let global_heap_bank = {
            let anchor = self.alloc.heap_alloc(64);
            self.alloc.bank_of(anchor)
        };
        let pq_bank = |pq: &Option<SpatialPriorityQueue>, v: u32| match pq {
            Some(q) => q.bank_of_partition(q.partition_of(v)),
            None => global_heap_bank,
        };

        let mut dist = vec![u64::MAX; n as usize];
        dist[source as usize] = 0;
        // Logical order comes from one heap (correctness); *placement* costs
        // come from the modeled queue layout.
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u64, source)));
        let mut settled = 0u64;
        let mut examined = 0u64;
        self.engine.begin_phase();
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            // Pop: a heap access at the queue's bank.
            let qb = pq_bank(&spatial_pq, u);
            self.engine.bank_read_lines(qb, 1);
            self.engine.se_ops(qb, 2);
            if d > dist[u as usize] {
                continue; // stale lazy-deletion entry
            }
            settled += 1;
            let core = self.core_of(u);
            let weights = self.weights_scratch(u);
            let edges = self.scan_edges(u);
            examined += edges.len() as u64;
            for (i, &(bank, v)) in edges.iter().enumerate() {
                let nd = d.saturating_add(u64::from(weights[i]));
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    self.push_update(bank, core, v, false);
                    // Push into v's queue from v's property bank: local for
                    // the spatial layout, remote for the global heap.
                    let qb = pq_bank(&spatial_pq, v);
                    let vb = self.prop_bank(v);
                    if in_core {
                        self.engine.core_atomic(core, qb, true, 1);
                    } else {
                        self.engine.remote_atomic(vb, qb, 1);
                    }
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
            self.edge_scratch = edges;
            self.weight_scratch = weights;
        }
        self.engine.end_phase();
        let stats = vec![IterStat {
            dir: Direction::Push,
            active: 0,
            visited: settled,
            scout_edges: 0,
            examined_edges: examined,
        }];
        let metrics = self.finish();
        GraphRun {
            metrics,
            iters: stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn kron() -> Graph {
        gen::kronecker(10, 8, 42)
    }

    fn run(system: SystemConfig, f: impl Fn(GraphInstance) -> GraphRun) -> GraphRun {
        let cfg = RunConfig::new(system).with_seed(1);
        let inst = GraphInstance::new(kron(), &cfg);
        f(inst)
    }

    #[test]
    fn bfs_visits_the_component_identically_across_systems() {
        let runs: Vec<GraphRun> = [
            SystemConfig::InCore,
            SystemConfig::NearL3,
            SystemConfig::aff_alloc_default(),
        ]
        .into_iter()
        .map(|s| run(s, |i| i.run_bfs(0, DirectionPolicy::PushOnly)))
        .collect();
        let visited: Vec<u64> = runs.iter().map(|r| r.iters.last().unwrap().visited).collect();
        assert_eq!(visited[0], visited[1]);
        assert_eq!(visited[0], visited[2]);
        assert!(visited[0] > 512, "Kronecker core component should be large");
    }

    #[test]
    fn aff_alloc_cuts_graph_traffic() {
        let near = run(SystemConfig::NearL3, |i| i.run_pr_push());
        let aff = run(SystemConfig::aff_alloc_default(), |i| i.run_pr_push());
        assert!(
            (aff.metrics.total_hop_flits as f64) < near.metrics.total_hop_flits as f64 * 0.6,
            "aff {} vs near {}",
            aff.metrics.total_hop_flits,
            near.metrics.total_hop_flits
        );
        assert!(aff.metrics.cycles < near.metrics.cycles);
    }

    #[test]
    fn ndc_beats_in_core_on_pr_push() {
        let incore = run(SystemConfig::InCore, |i| i.run_pr_push());
        let aff = run(SystemConfig::aff_alloc_default(), |i| i.run_pr_push());
        assert!(aff.metrics.cycles < incore.metrics.cycles);
    }

    #[test]
    fn bfs_iteration_stats_are_consistent() {
        let r = run(SystemConfig::aff_alloc_default(), |i| {
            i.run_bfs(0, DirectionPolicy::PushOnly)
        });
        let mut cum = 1u64;
        for it in &r.iters {
            cum += it.active;
            assert_eq!(it.visited, cum);
        }
    }

    #[test]
    fn direction_policies_differ() {
        let push = run(SystemConfig::NearL3, |i| i.run_bfs(0, DirectionPolicy::PushOnly));
        let gap = run(SystemConfig::NearL3, |i| i.run_bfs(0, DirectionPolicy::GapSwitch));
        assert!(push.iters.iter().all(|s| s.dir == Direction::Push));
        assert!(
            gap.iters.iter().any(|s| s.dir == Direction::Pull),
            "GAP switching should pull in the middle iterations of a Kronecker BFS"
        );
        // Both find the same BFS tree size.
        assert_eq!(
            push.iters.last().unwrap().visited,
            gap.iters.last().unwrap().visited
        );
    }

    #[test]
    fn aff_switch_pulls_less_than_gap() {
        let gap = run(SystemConfig::aff_alloc_default(), |i| {
            i.run_bfs(0, DirectionPolicy::GapSwitch)
        });
        let aff = run(SystemConfig::aff_alloc_default(), |i| {
            i.run_bfs(0, DirectionPolicy::AffSwitch)
        });
        let pulls = |r: &GraphRun| r.iters.iter().filter(|s| s.dir == Direction::Pull).count();
        assert!(
            pulls(&aff) <= pulls(&gap),
            "the Aff policy pushes more (remote atomics are cheap near data)"
        );
    }

    #[test]
    fn sssp_distances_are_correct_on_a_path() {
        let g = Graph::from_weighted_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)], &[2, 3, 4, 20]);
        let cfg = RunConfig::new(SystemConfig::aff_alloc_default());
        let inst = GraphInstance::new(g, &cfg);
        let r = inst.run_sssp(0);
        assert_eq!(r.iters.last().unwrap().visited, 4);
    }

    #[test]
    fn priority_sssp_settles_and_beats_fifo_on_rerelaxations() {
        let g = gen::kronecker_weighted(10, 8, 42);
        let src = pick_source(&g);
        let cfg = RunConfig::new(SystemConfig::aff_alloc_default()).with_seed(1);
        let fifo = GraphInstance::new(g.clone(), &cfg).run_sssp(src);
        let pq = GraphInstance::new(g.clone(), &cfg).run_sssp_priority(src);
        // Same reachable set.
        assert_eq!(
            pq.iters.last().unwrap().visited,
            fifo.iters.last().unwrap().visited
        );
        // Dijkstra settles each vertex once: fewer edges examined than the
        // label-correcting frontier, which re-relaxes.
        let fifo_examined: u64 = fifo.iters.iter().map(|i| i.examined_edges).sum();
        let pq_examined: u64 = pq.iters.iter().map(|i| i.examined_edges).sum();
        assert!(
            pq_examined <= fifo_examined,
            "pq {pq_examined} vs fifo {fifo_examined}"
        );
    }

    #[test]
    fn spatial_pq_localizes_queue_traffic() {
        let g = gen::kronecker_weighted(10, 8, 42);
        let src = pick_source(&g);
        let near = GraphInstance::new(
            g.clone(),
            &RunConfig::new(SystemConfig::NearL3).with_seed(1),
        )
        .run_sssp_priority(src);
        let aff = GraphInstance::new(
            g,
            &RunConfig::new(SystemConfig::aff_alloc_default()).with_seed(1),
        )
        .run_sssp_priority(src);
        assert!(
            aff.metrics.total_hop_flits < near.metrics.total_hop_flits,
            "spatial PQ must cut queue traffic: {} vs {}",
            aff.metrics.total_hop_flits,
            near.metrics.total_hop_flits
        );
    }

    #[test]
    fn occupancy_sampled_per_iteration() {
        let r = run(SystemConfig::aff_alloc_default(), |i| {
            i.run_bfs(0, DirectionPolicy::PushOnly)
        });
        assert!(!r.metrics.occupancy.is_empty());
        assert!(r.metrics.occupancy.len() <= r.iters.len());
    }

    #[test]
    fn closed_loop_recovers_graph_annotations() {
        use affinity_alloc::AffinityProfile;
        use std::sync::Arc;

        // Phase 1: profile an unhinted pr_push with the miner installed.
        let cfg = RunConfig::new(SystemConfig::aff_alloc_default()).with_seed(1);
        mine::install_thread_miner();
        let none = GraphInstance::new(kron(), &cfg.clone().with_hints(HintMode::NoHints))
            .run_pr_push();
        let mined = mine::take_thread_miner().expect("miner was installed");
        let profile = AffinityProfile::infer(&mined);

        // The mined structure matches the hand annotations: partitioned
        // properties, chained edge nodes.
        assert_eq!(
            profile.region_hint(0).map(|h| &h.hint),
            Some(&InferredHint::Partition),
            "scattered indirect targets must infer a partitioned prop array"
        );
        assert_eq!(
            profile.region_hint(1).map(|h| &h.hint),
            Some(&InferredHint::Chain),
            "edge-node traversal must infer a chain"
        );

        // Phase 2: replay — inferred matches annotated, both beat unhinted.
        let annotated = GraphInstance::new(kron(), &cfg).run_pr_push();
        let inferred = GraphInstance::new(
            kron(),
            &cfg.clone().with_hints(HintMode::Inferred(Arc::new(profile))),
        )
        .run_pr_push();
        assert_eq!(
            inferred.metrics.cycles, annotated.metrics.cycles,
            "inferred hints must reproduce the annotated layout"
        );
        assert!(inferred.metrics.cycles < none.metrics.cycles);
        assert_eq!(inferred.metrics.hint_source.as_deref(), Some("inferred"));
        assert_eq!(annotated.metrics.hint_source, None);
    }

    #[test]
    fn chunk_oracle_improves_over_baseline_csr() {
        let cfg = RunConfig::new(SystemConfig::NearL3).with_seed(1);
        let base = GraphInstance::new(kron(), &cfg).run_pr_push();
        let cfg_aff = RunConfig::new(SystemConfig::aff_alloc_default()).with_seed(1);
        let fine = GraphInstance::with_chunk_oracle(kron(), &cfg_aff, 64).run_pr_push();
        let coarse = GraphInstance::with_chunk_oracle(kron(), &cfg_aff, 4096).run_pr_push();
        assert!(fine.metrics.total_hop_flits <= coarse.metrics.total_hop_flits);
        assert!(fine.metrics.total_hop_flits < base.metrics.total_hop_flits);
    }
}

//! Per-bank atomic-stream occupancy timelines (Fig 14 of the paper).
//!
//! The paper plots, over the execution of `bfs_push`, how many atomic streams
//! are in flight at each L3 bank, as a distribution from least- to
//! most-occupied bank. We reconstruct the same quantity with Little's law:
//! during a phase (one BFS iteration), bank *b* receives `n_b` atomics whose
//! average network distance is `h_b` hops, so with the phase's duration set
//! by the bottleneck bank, the in-flight population at *b* is
//!
//! ```text
//! occupancy_b = min(SE capacity, n_b / duration × latency_b)
//! ```
//!
//! This reproduces the paper's observations directly: random placement has
//! high latency everywhere (high occupancy across all banks); min-hop has
//! tiny latency but piles `n_b` onto few banks; the hybrid policy flattens
//! the distribution.

use aff_sim_core::config::MachineConfig;
use aff_sim_core::stats::FivePoint;
use serde::{Deserialize, Serialize};

/// One sampled phase: estimated atomic streams in flight per bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancySnapshot {
    /// In-flight atomic streams per bank.
    pub per_bank: Vec<f64>,
    /// Relative duration weight of the phase (bottleneck-bank atomics).
    pub weight: f64,
}

impl OccupancySnapshot {
    /// The min/p25/avg/p75/max summary the paper plots.
    pub fn five_point(&self) -> FivePoint {
        FivePoint::from_samples(&self.per_bank)
    }
}

/// A sequence of phase snapshots over one kernel execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OccupancyTimeline {
    snapshots: Vec<OccupancySnapshot>,
}

impl OccupancyTimeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a snapshot.
    pub fn push(&mut self, s: OccupancySnapshot) {
        self.snapshots.push(s);
    }

    /// Number of sampled phases.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether no phases were sampled.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// All snapshots in order.
    pub fn snapshots(&self) -> &[OccupancySnapshot] {
        &self.snapshots
    }

    /// Resample the timeline to `points` equally spaced (by weight) summary
    /// rows — the normalized-cycle x-axis of Fig 14.
    pub fn resample(&self, points: usize) -> Vec<FivePoint> {
        assert!(points > 0);
        if self.snapshots.is_empty() {
            return Vec::new();
        }
        let total: f64 = self.snapshots.iter().map(|s| s.weight.max(1e-12)).sum();
        let mut out = Vec::with_capacity(points);
        let mut acc = 0.0;
        let mut idx = 0usize;
        for p in 0..points {
            let target = total * (p as f64 + 0.5) / points as f64;
            while idx + 1 < self.snapshots.len()
                && acc + self.snapshots[idx].weight.max(1e-12) < target
            {
                acc += self.snapshots[idx].weight.max(1e-12);
                idx += 1;
            }
            out.push(self.snapshots[idx].five_point());
        }
        out
    }
}

/// Accumulates atomic activity during one phase.
#[derive(Debug, Clone)]
pub struct PhaseTracker {
    num_banks: u32,
    active: bool,
    atomics: Vec<u64>,
    hop_sum: Vec<u64>,
}

impl PhaseTracker {
    /// Tracker for `num_banks` banks, initially outside any phase.
    pub fn new(num_banks: u32) -> Self {
        Self {
            num_banks,
            active: false,
            atomics: vec![0; num_banks as usize],
            hop_sum: vec![0; num_banks as usize],
        }
    }

    /// Start a phase, clearing per-phase counters.
    pub fn begin(&mut self) {
        self.active = true;
        self.atomics.iter_mut().for_each(|x| *x = 0);
        self.hop_sum.iter_mut().for_each(|x| *x = 0);
    }

    /// Record `n` atomics arriving at `bank` from `hops` links away.
    /// No-op outside a phase (unsampled kernels pay nothing).
    pub fn record_atomics(&mut self, bank: u32, n: u64, hops: u64) {
        if !self.active {
            return;
        }
        self.atomics[bank as usize] += n;
        self.hop_sum[bank as usize] += n * hops;
    }

    /// End the phase, producing a snapshot (or `None` if no atomics ran).
    pub fn end(&mut self, config: &MachineConfig) -> Option<OccupancySnapshot> {
        self.active = false;
        // Lane-chunked bottleneck max; the per-bank Little's-law pass below
        // is a straight divide/fma/min line whose only branch is folded into
        // a final select, so both scans autovectorize. Values (including the
        // idle-bank zeros) are bit-identical to the scalar formulation — the
        // conversions are hoisted but every float op keeps its order.
        let bottleneck = aff_cache::lanes::max_u64(&self.atomics);
        if bottleneck == 0 {
            return None;
        }
        // Phase duration: the bottleneck bank serializes its atomics.
        let duration = bottleneck as f64 / config.bank_accesses_per_cycle;
        let cap = f64::from(config.sel3_streams_per_bank.max(1)) * 4.0 / 3.0;
        let hop_latency = config.hop_latency as f64;
        let l3_latency = config.l3_latency as f64;
        let mut per_bank = vec![0.0f64; self.num_banks as usize];
        for (b, out) in per_bank.iter_mut().enumerate() {
            let n = self.atomics[b] as f64;
            let avg_hops = self.hop_sum[b] as f64 / n;
            let latency = avg_hops * hop_latency * 2.0 + l3_latency;
            // Little's law: L = λ·W, capped by SE capacity. An idle bank
            // divides 0/0 above; the select discards the NaN for the exact
            // 0.0 the scalar early-return produced.
            let occupancy = (n / duration * latency).min(cap);
            *out = if n == 0.0 { 0.0 } else { occupancy };
        }
        Some(OccupancySnapshot {
            per_bank,
            weight: bottleneck as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::paper_default()
    }

    #[test]
    fn empty_phase_yields_nothing() {
        let mut t = PhaseTracker::new(64);
        t.begin();
        assert!(t.end(&cfg()).is_none());
    }

    #[test]
    fn recording_outside_phase_is_ignored() {
        let mut t = PhaseTracker::new(64);
        t.record_atomics(0, 100, 3);
        t.begin();
        assert!(t.end(&cfg()).is_none());
    }

    #[test]
    fn far_atomics_raise_occupancy() {
        // A lightly loaded bank (1/10th of the bottleneck's arrivals) shows
        // Little's-law occupancy proportional to its atomics' latency.
        let run = |hops: u64| {
            let mut t = PhaseTracker::new(64);
            t.begin();
            t.record_atomics(0, 1000, 2); // bottleneck sets the duration
            t.record_atomics(1, 100, hops);
            t.end(&cfg()).unwrap()
        };
        let near = run(1);
        let far = run(8);
        assert!(far.per_bank[1] > near.per_bank[1]);
    }

    #[test]
    fn saturated_bank_pins_at_capacity() {
        // A fully loaded bank saturates its SE slots no matter the distance —
        // the flat-top lines of Fig 14.
        let mut t = PhaseTracker::new(64);
        t.begin();
        for b in 0..64 {
            t.record_atomics(b, 100, 4);
        }
        let s = t.end(&cfg()).unwrap();
        let fp = s.five_point();
        assert!(fp.min == fp.max, "uniform full load saturates uniformly");
    }

    #[test]
    fn skewed_load_skews_distribution() {
        let mut t = PhaseTracker::new(64);
        t.begin();
        t.record_atomics(0, 10_000, 2);
        t.record_atomics(1, 10, 2);
        let s = t.end(&cfg()).unwrap();
        let fp = s.five_point();
        assert!(fp.max > fp.p25 * 10.0, "min-hop style pile-up should skew");
    }

    #[test]
    fn occupancy_capped_by_se_capacity() {
        let mut t = PhaseTracker::new(64);
        t.begin();
        t.record_atomics(5, 1_000_000, 14);
        let s = t.end(&cfg()).unwrap();
        assert!(s.per_bank[5] <= 16.0 + 1e-9);
    }

    #[test]
    fn resample_normalizes_time() {
        let mut tl = OccupancyTimeline::new();
        for w in [1.0, 3.0] {
            tl.push(OccupancySnapshot {
                per_bank: vec![w; 4],
                weight: w,
            });
        }
        let rows = tl.resample(4);
        assert_eq!(rows.len(), 4);
        // First quarter comes from the weight-1 snapshot, rest from weight-3.
        assert_eq!(rows[0].avg, 1.0);
        assert_eq!(rows[3].avg, 3.0);
    }

    #[test]
    fn resample_empty_is_empty() {
        assert!(OccupancyTimeline::new().resample(5).is_empty());
    }
}

//! Stream-graph interpreter: executes Fig 2 programs element-wise over
//! simulated memory.
//!
//! The workload executors in `aff-workloads` charge *costs*; this module
//! supplies the *semantics* — it runs a [`StreamGraph`] against an
//! [`AddressSpace`] and produces real values, so tests can check that the
//! stream abstraction computes exactly what the scalar loop it replaced
//! would have (the compiler-correctness obligation of §2). Supported:
//!
//! * affine load / store streams with attached computation (Fig 2(a)),
//! * indirect streams `A[B[i]]` fed by an address edge,
//! * atomic CAS streams and predicate edges that skip dependent streams
//!   (Fig 2(c)'s `sx` gating `st`/`sq`),
//! * pointer-chasing streams with the dynamic break (Fig 2(b)) via
//!   [`Interp::execute_chase`].
//!
//! Per-stream access counts are reported so tests can also assert *where*
//! the accesses landed.

use crate::stream::{DepKind, StreamGraph};
use aff_mem::addr::VAddr;
use aff_mem::space::AddressSpace;
use aff_sim_core::error::{BudgetKind, RunBudget, SimError};

/// Arithmetic attached to a computing stream: inputs are the values of its
/// `Value`-edge producers, in declaration order.
pub type ComputeFn = Box<dyn Fn(&[u64]) -> u64>;

/// How one stream maps onto memory.
pub enum Binding {
    /// Affine load: element `i` at `base + i·elem_size`.
    Load {
        /// Array base.
        base: VAddr,
        /// Element size in bytes (1–8).
        elem_size: u64,
    },
    /// Affine store of `compute(values)` to `base + i·elem_size`.
    Store {
        /// Array base.
        base: VAddr,
        /// Element size in bytes (1–8).
        elem_size: u64,
        /// Attached computation over the `Value` producers.
        compute: ComputeFn,
    },
    /// Indirect access `base + producer_value·elem_size` (the producer is
    /// the stream's `Address` edge).
    Indirect {
        /// Pointed-to array base.
        base: VAddr,
        /// Element size in bytes (1–8).
        elem_size: u64,
    },
    /// Atomic compare-and-swap at `base + producer_value·elem_size`:
    /// stores the stream's `Value` producer if the current value equals
    /// `expected`; yields 1 on success (the predicate output of Fig 2(c)).
    AtomicCas {
        /// Target array base.
        base: VAddr,
        /// Element size (must be 8 for CAS).
        elem_size: u64,
        /// Expected (unvisited) value.
        expected: u64,
    },
}

/// Result of interpreting an affine graph instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterpReport {
    /// Elements processed.
    pub iterations: u64,
    /// Memory accesses per stream index.
    pub accesses_per_stream: Vec<u64>,
    /// Accesses per bank (index = bank id).
    pub accesses_per_bank: Vec<u64>,
    /// Elements skipped by predication, per stream index.
    pub predicated_off: Vec<u64>,
}

/// Result of a pointer-chasing execution (Fig 2(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaseReport {
    /// Whether the comparison hit before the list ended.
    pub hit: bool,
    /// Nodes visited (including the hit node).
    pub steps: u64,
    /// The value found, if any.
    pub value: Option<u64>,
}

/// The interpreter. Borrows the address space for one execution.
pub struct Interp<'a> {
    space: &'a mut AddressSpace,
}

impl<'a> Interp<'a> {
    /// Interpreter over `space`.
    pub fn new(space: &'a mut AddressSpace) -> Self {
        Self { space }
    }

    fn read_elem(&mut self, addr: VAddr, elem_size: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.space
            .memory()
            .read_bytes(addr, &mut buf[..elem_size as usize]);
        u64::from_le_bytes(buf)
    }

    fn write_elem(&mut self, addr: VAddr, elem_size: u64, v: u64) {
        self.space
            .memory_mut()
            .write_bytes(addr, &v.to_le_bytes()[..elem_size as usize]);
    }

    /// Execute `graph` for `n` elements with one [`Binding`] per stream
    /// (same order as the graph's declarations).
    ///
    /// # Panics
    ///
    /// Panics if bindings mismatch the graph (wrong count, binding kind
    /// incompatible with stream kind, missing address producer, cyclic
    /// dependences). Use [`Interp::try_execute_affine`] to get these (and
    /// budget exhaustion) as typed [`SimError`]s instead.
    #[deprecated(note = "use try_execute_affine")]
    pub fn execute_affine(
        &mut self,
        graph: &StreamGraph,
        bindings: &[Binding],
        n: u64,
    ) -> InterpReport {
        // invariant: with an unlimited budget the only failure modes are
        // caller bugs (mismatched bindings, cyclic graphs), which this
        // legacy entry point reports by panicking.
        self.try_execute_affine(graph, bindings, n, &RunBudget::unlimited())
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Budget-aware [`Interp::execute_affine`]: graph/binding mismatches
    /// surface as [`SimError::InvalidConfig`] and every element access
    /// counts against `budget.max_events` (`wall_ms` is checked once per
    /// 4096 elements), so runaway interpreter loops terminate with
    /// [`SimError::BudgetExhausted`] instead of spinning.
    pub fn try_execute_affine(
        &mut self,
        graph: &StreamGraph,
        bindings: &[Binding],
        n: u64,
        budget: &RunBudget,
    ) -> Result<InterpReport, SimError> {
        if bindings.len() != graph.num_streams() {
            return Err(SimError::InvalidConfig(format!(
                "one binding per stream: got {} bindings for {} streams",
                bindings.len(),
                graph.num_streams()
            )));
        }
        let order = try_topo_order(graph)?;
        let deadline = budget
            .wall_ms
            .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
        let num_banks = self.space.config().num_banks() as usize;
        let mut report = InterpReport {
            iterations: n,
            accesses_per_stream: vec![0; bindings.len()],
            accesses_per_bank: vec![0; num_banks],
            predicated_off: vec![0; bindings.len()],
        };
        let mut events = 0u64;
        // Stream slots are small dense integers: a flat vector (absent slot
        // reads 0) replaces the per-element hash map.
        let mut values: Vec<u64> = vec![0; graph.num_streams()];
        let mut value_inputs: Vec<u64> = Vec::new();
        for i in 0..n {
            values.fill(0);
            if let Some(dl) = deadline {
                // Amortize the syscall: one wall-clock check per 4096 elements.
                if i.is_multiple_of(4096) && std::time::Instant::now() >= dl {
                    return Err(SimError::BudgetExhausted {
                        budget: BudgetKind::WallMs,
                        limit: budget.wall_ms.unwrap_or(0),
                        reached: budget.wall_ms.unwrap_or(0),
                    });
                }
            }
            for &s in &order {
                // Predication: skip when any predicate producer yielded 0.
                let gated_off = graph
                    .producers_of(s, DepKind::Predicate)
                    .iter()
                    .any(|&p| values[p] == 0);
                if gated_off {
                    report.predicated_off[s] += 1;
                    continue;
                }
                let addr_producer = graph.producers_of(s, DepKind::Address);
                value_inputs.clear();
                value_inputs.extend(
                    graph
                        .producers_of(s, DepKind::Value)
                        .iter()
                        .map(|&p| values[p]),
                );
                let (addr, elem) = match &bindings[s] {
                    Binding::Load { base, elem_size } | Binding::Store { base, elem_size, .. } => {
                        (*base + i * elem_size, *elem_size)
                    }
                    Binding::Indirect { base, elem_size }
                    | Binding::AtomicCas {
                        base, elem_size, ..
                    } => {
                        let Some(idx) = addr_producer.first().map(|&p| values[p]) else {
                            return Err(SimError::InvalidConfig(format!(
                                "indirect/atomic stream needs an address producer (stream {s})"
                            )));
                        };
                        (*base + idx * elem_size, *elem_size)
                    }
                };
                events += 1;
                if let Some(limit) = budget.max_events {
                    if events > limit {
                        return Err(SimError::BudgetExhausted {
                            budget: BudgetKind::Events,
                            limit,
                            reached: events,
                        });
                    }
                }
                let bank = self.space.bank_of(addr) as usize;
                report.accesses_per_stream[s] += 1;
                report.accesses_per_bank[bank] += 1;
                let out = match &bindings[s] {
                    Binding::Load { .. } => self.read_elem(addr, elem),
                    Binding::Indirect { .. } => self.read_elem(addr, elem),
                    Binding::Store { compute, .. } => {
                        let v = compute(&value_inputs);
                        self.write_elem(addr, elem, v);
                        v
                    }
                    Binding::AtomicCas { expected, .. } => {
                        let new = value_inputs.first().copied().unwrap_or(0);
                        u64::from(self.space.memory_mut().cas_u64(addr, *expected, new))
                    }
                };
                values[s] = out;
            }
        }
        Ok(report)
    }

    /// Execute a pointer-chasing search (Fig 2(b)): nodes are
    /// `[value: u64][next: u64(vaddr)]`; chase until `value == target`,
    /// the next pointer is null, or `max_steps` nodes were visited.
    pub fn execute_chase(&mut self, head: VAddr, target: u64, max_steps: u64) -> ChaseReport {
        let mut cur = head;
        let mut steps = 0u64;
        while cur.raw() != 0 && steps < max_steps {
            steps += 1;
            let v = self.space.memory().read_u64(cur);
            if v == target {
                return ChaseReport {
                    hit: true,
                    steps,
                    value: Some(v),
                };
            }
            cur = VAddr(self.space.memory().read_u64(cur + 8));
        }
        ChaseReport {
            hit: false,
            steps,
            value: None,
        }
    }
}

/// Topological order of the graph's streams (address/value/predicate edges
/// all order producer before consumer); a dependence cycle is reported as
/// [`SimError::InvalidConfig`].
fn try_topo_order(graph: &StreamGraph) -> Result<Vec<usize>, SimError> {
    let n = graph.num_streams();
    let mut indeg = vec![0usize; n];
    for d in graph.deps() {
        indeg[d.to] += 1;
    }
    let mut ready: Vec<usize> = (0..n).filter(|&s| indeg[s] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(s) = ready.pop() {
        order.push(s);
        for d in graph.deps() {
            if d.from == s {
                indeg[d.to] -= 1;
                if indeg[d.to] == 0 {
                    ready.push(d.to);
                }
            }
        }
    }
    if order.len() != n {
        return Err(SimError::InvalidConfig(format!(
            "stream dependence cycle: only {} of {n} streams orderable",
            order.len()
        )));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamKind as K;
    use aff_sim_core::config::MachineConfig;

    fn space() -> AddressSpace {
        AddressSpace::new(MachineConfig::paper_default())
    }

    #[test]
    fn vec_add_computes_the_sum() {
        let mut space = space();
        let n = 1000u64;
        let a = space.heap_alloc(4 * n, 64);
        let b = space.heap_alloc(4 * n, 64);
        let c = space.heap_alloc(4 * n, 64);
        for i in 0..n {
            space.memory_mut().write_u32(a + i * 4, i as u32);
            space.memory_mut().write_u32(b + i * 4, (2 * i) as u32);
        }
        let graph = StreamGraph::vec_add();
        let bindings = vec![
            Binding::Load { base: a, elem_size: 4 },
            Binding::Load { base: b, elem_size: 4 },
            Binding::Store {
                base: c,
                elem_size: 4,
                compute: Box::new(|v| v[0] + v[1]),
            },
        ];
        let report = Interp::new(&mut space)
            .try_execute_affine(&graph, &bindings, n, &RunBudget::unlimited())
            .expect("valid bindings");
        for i in (0..n).step_by(97) {
            assert_eq!(space.memory().read_u32(c + i * 4), (3 * i) as u32, "C[{i}]");
        }
        assert_eq!(report.accesses_per_stream, vec![n, n, n]);
        assert_eq!(report.accesses_per_bank.iter().sum::<u64>(), 3 * n);
    }

    #[test]
    fn indirect_gather_reads_through_the_index() {
        let mut space = space();
        let n = 256u64;
        let idx = space.heap_alloc(8 * n, 64);
        let data = space.heap_alloc(8 * 1024, 64);
        let out = space.heap_alloc(8 * n, 64);
        for i in 0..n {
            space.memory_mut().write_u64(idx + i * 8, (i * 37) % 1024);
        }
        for j in 0..1024u64 {
            space.memory_mut().write_u64(data + j * 8, j * j);
        }
        // sb = idx[i]; sv = data[sb]; sc = store(sv)
        let mut b = StreamGraph::builder("gather");
        let sb = b.stream("sb", K::AffineLoad, 8, false);
        let sv = b.stream("sv", K::Indirect, 8, false);
        let sc = b.stream("sc", K::AffineStore, 8, true);
        b.dep(sb, sv, DepKind::Address);
        b.dep(sv, sc, DepKind::Value);
        let graph = b.build();
        let bindings = vec![
            Binding::Load { base: idx, elem_size: 8 },
            Binding::Indirect { base: data, elem_size: 8 },
            Binding::Store {
                base: out,
                elem_size: 8,
                compute: Box::new(|v| v[0]),
            },
        ];
        Interp::new(&mut space)
            .try_execute_affine(&graph, &bindings, n, &RunBudget::unlimited())
            .expect("valid bindings");
        for i in (0..n).step_by(13) {
            let j = (i * 37) % 1024;
            assert_eq!(space.memory().read_u64(out + i * 8), j * j, "out[{i}]");
        }
    }

    #[test]
    fn cas_predication_gates_dependent_stores() {
        // The Fig 2(c) core: sv produces vertex ids, sx CASes P[v], and a
        // predicated store records successes. Duplicate ids must fail the
        // second CAS and suppress the dependent store.
        let mut space = space();
        let n = 8u64;
        let verts = space.heap_alloc(8 * n, 64);
        let parent = space.heap_alloc(8 * 16, 64);
        let log = space.heap_alloc(8 * n, 64);
        let ids = [3u64, 5, 3, 7, 5, 1, 3, 2]; // duplicates: 3, 5, 3
        for (i, &v) in ids.iter().enumerate() {
            space.memory_mut().write_u64(verts + i as u64 * 8, v);
        }
        for j in 0..16u64 {
            space.memory_mut().write_u64(parent + j * 8, u64::MAX);
        }
        let mut b = StreamGraph::builder("cas");
        let sv = b.stream("sv", K::AffineLoad, 8, false);
        let sp = b.stream("sp", K::AffineLoad, 8, false); // parent value = i
        let sx = b.stream("sx", K::Atomic, 8, true);
        let sq = b.stream("sq", K::AffineStore, 8, false);
        b.dep(sv, sx, DepKind::Address);
        b.dep(sp, sx, DepKind::Value);
        b.dep(sx, sq, DepKind::Predicate);
        b.dep(sv, sq, DepKind::Value);
        let graph = b.build();
        // sp reads a counter array holding i at slot i.
        let counter = space.heap_alloc(8 * n, 64);
        for i in 0..n {
            space.memory_mut().write_u64(counter + i * 8, 100 + i);
        }
        let bindings = vec![
            Binding::Load { base: verts, elem_size: 8 },
            Binding::Load { base: counter, elem_size: 8 },
            Binding::AtomicCas {
                base: parent,
                elem_size: 8,
                expected: u64::MAX,
            },
            Binding::Store {
                base: log,
                elem_size: 8,
                compute: Box::new(|v| v[0]),
            },
        ];
        let report = Interp::new(&mut space)
            .try_execute_affine(&graph, &bindings, n, &RunBudget::unlimited())
            .expect("valid bindings");
        // First visits set the parent; repeats failed the CAS.
        assert_eq!(space.memory().read_u64(parent + 3 * 8), 100);
        assert_eq!(space.memory().read_u64(parent + 5 * 8), 101);
        assert_eq!(space.memory().read_u64(parent + 7 * 8), 103);
        // Three duplicate CASes failed ⇒ the store was predicated off 3x.
        assert_eq!(report.predicated_off[3], 3);
        assert_eq!(report.accesses_per_stream[3], n - 3);
    }

    #[test]
    fn chase_finds_its_target() {
        let mut space = space();
        // Build a 20-node list with values 0,10,20,…
        let mut nodes = Vec::new();
        for _ in 0..20 {
            nodes.push(space.heap_alloc(16, 64));
        }
        for (k, &node) in nodes.iter().enumerate() {
            space.memory_mut().write_u64(node, (k as u64) * 10);
            let next = nodes.get(k + 1).map_or(0, |n| n.raw());
            space.memory_mut().write_u64(node + 8, next);
        }
        let mut interp = Interp::new(&mut space);
        let hit = interp.execute_chase(nodes[0], 70, 1000);
        assert_eq!(
            hit,
            ChaseReport {
                hit: true,
                steps: 8,
                value: Some(70)
            }
        );
        let miss = interp.execute_chase(nodes[0], 75, 1000);
        assert!(!miss.hit);
        assert_eq!(miss.steps, 20, "dynamic break at the null next pointer");
    }

    #[test]
    fn event_budget_cuts_the_interpreter_loop() {
        use aff_sim_core::error::{BudgetKind, SimError};
        let mut space = space();
        let n = 1000u64;
        let a = space.heap_alloc(4 * n, 64);
        let b_arr = space.heap_alloc(4 * n, 64);
        let c = space.heap_alloc(4 * n, 64);
        let graph = StreamGraph::vec_add();
        let bindings = vec![
            Binding::Load { base: a, elem_size: 4 },
            Binding::Load { base: b_arr, elem_size: 4 },
            Binding::Store {
                base: c,
                elem_size: 4,
                compute: Box::new(|v| v[0] + v[1]),
            },
        ];
        // 3 accesses/element x 1000 elements = 3000 events; cap at 100.
        let budget = RunBudget::unlimited().with_max_events(100);
        let err = Interp::new(&mut space)
            .try_execute_affine(&graph, &bindings, n, &budget)
            .expect_err("3000 accesses exceed a 100-event budget");
        assert!(matches!(
            err,
            SimError::BudgetExhausted {
                budget: BudgetKind::Events,
                limit: 100,
                reached: 101
            }
        ));
        // The unlimited path still works and matches the legacy entry point.
        let ok = Interp::new(&mut space)
            .try_execute_affine(&graph, &bindings, n, &RunBudget::unlimited())
            .expect("unlimited budget");
        assert_eq!(ok.accesses_per_stream, vec![n, n, n]);
    }

    #[test]
    fn mismatched_bindings_are_a_typed_error() {
        use aff_sim_core::error::SimError;
        let mut space = space();
        let graph = StreamGraph::vec_add();
        let err = Interp::new(&mut space)
            .try_execute_affine(&graph, &[], 1, &RunBudget::unlimited())
            .expect_err("no bindings for three streams");
        match err {
            SimError::InvalidConfig(msg) => {
                assert!(msg.contains("one binding per stream"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    /// Compat pin: the deprecated [`Interp::execute_affine`] must keep its
    /// documented panic contract (delegating to `try_execute_affine`).
    #[test]
    #[should_panic(expected = "one binding per stream")]
    #[allow(deprecated)]
    fn binding_count_checked() {
        let mut space = space();
        let graph = StreamGraph::vec_add();
        Interp::new(&mut space).execute_affine(&graph, &[], 1);
    }

    #[test]
    fn topo_order_respects_dependences() {
        let g = StreamGraph::push_bfs();
        let order = try_topo_order(&g).expect("builder graphs are acyclic");
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (i, &s) in order.iter().enumerate() {
                p[s] = i;
            }
            p
        };
        for d in g.deps() {
            assert!(pos[d.from] < pos[d.to], "{} before {}", d.from, d.to);
        }
    }
}

//! The simulation engine: accounting-driven timing, traffic and energy.
//!
//! Workload executors translate their kernels into calls on [`SimEngine`] —
//! "core 3 read 512 lines from bank 9", "stream migrated from bank 4 to 5",
//! "CAS executed at bank 61 from bank 7" — and the engine attributes each to
//! a traffic class, a bank, and an energy event. [`SimEngine::finish`] then
//! resolves capacity misses against the DRAM model and computes the analytic
//! cycle estimate:
//!
//! ```text
//! cycles = max(core-compute, se-compute, bank-service, bottleneck-link, dram)
//!          + serial-chain latency
//! ```
//!
//! The serial term captures pointer chasing, where per-hop latency cannot be
//! hidden by bandwidth. The max-of-bounds form is the standard roofline-style
//! abstraction of a throughput-bound parallel machine; the packet-level DES
//! model in [`aff_noc::des`] cross-validates the link term.

use crate::occupancy::{OccupancyTimeline, PhaseTracker};
use aff_cache::bank::BankCounters;
use aff_cache::capacity;
use aff_cache::dram::DramModel;
use aff_cache::spare::SpareMap;
use aff_noc::topology::{BankId, Topology};
use aff_noc::traffic::{TrafficClass, TrafficMatrix};
use aff_sim_core::config::{MachineConfig, CACHE_LINE};
use aff_sim_core::energy::{EnergyBreakdown, EnergyModel};
use aff_sim_core::error::{BudgetKind, SimError};
use aff_sim_core::fault::{self, DegradationReport, FaultEvent, FaultPlan, FaultTimeline};
use aff_sim_core::tenant::{TenantId, TenantUsage};
use aff_sim_core::mine;
use aff_sim_core::trace::{self, Event, Recorder, TrafficKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Iterations covered by one coarse-grained credit message (§2.2).
pub const CREDIT_BATCH: u64 = 64;

/// Bytes of architectural state carried by a stream migration.
pub const MIGRATE_STATE_BYTES: u64 = 32;

/// Slots in the run-length coalescing buffer. Four covers every charge
/// primitive (each records at most four distinct messages), so alternating
/// request/response pairs from a tight per-element loop still coalesce.
const COALESCE_SLOTS: usize = 4;

/// One buffered traffic charge awaiting coalescing: consecutive charges to
/// the same `(src, dst, payload, class)` — the common case when a vertex's
/// neighbors share a bank — collapse into one `record_n` instead of probing
/// the traffic matrix per element.
#[derive(Debug, Clone, Copy)]
struct PendingCharge {
    src: BankId,
    dst: BankId,
    payload_bytes: u64,
    class: TrafficClass,
    count: u64,
}

/// Where the analytic cycle count came from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Core pipeline bound: total core ops over the aggregate issue width of
    /// all tiles (assumes the workload threads evenly, which the OpenMP
    /// kernels of Table 3 do).
    pub core_compute: u64,
    /// Busiest stream engine's op count.
    pub se_compute: u64,
    /// Busiest L3 bank's service time.
    pub bank_service: u64,
    /// Busiest NoC link's flit count.
    pub link: u64,
    /// DRAM bandwidth service time.
    pub dram: u64,
    /// Serial dependence-chain latency (added on top of the max).
    pub chain: u64,
}

impl CycleBreakdown {
    /// The throughput bound (max of the parallel terms).
    pub fn throughput_bound(&self) -> u64 {
        self.core_compute
            .max(self.se_compute)
            .max(self.bank_service)
            .max(self.link)
            .max(self.dram)
    }

    /// Total analytic cycles.
    pub fn total(&self) -> u64 {
        self.throughput_bound() + self.chain
    }
}

/// Results of one simulated kernel execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Metrics {
    /// Analytic cycle estimate.
    pub cycles: u64,
    /// Where those cycles came from.
    pub breakdown: CycleBreakdown,
    /// Flit-hops per traffic class `[Offload, Data, Control]`.
    pub hop_flits: [u64; 3],
    /// Total flit-hops.
    pub total_hop_flits: u64,
    /// Mean/peak link utilization (the paper's "NoC Util." dots).
    pub noc_utilization: f64,
    /// Access-weighted L3 miss rate in `[0, 1]`.
    pub l3_miss_rate: f64,
    /// DRAM line accesses.
    pub dram_accesses: u64,
    /// Energy event counts.
    pub energy: EnergyBreakdown,
    /// Total energy (pJ) under the default model.
    pub energy_pj: f64,
    /// Busiest-bank / mean-bank access ratio.
    pub bank_imbalance: f64,
    /// Per-bank atomic-stream occupancy over time (Fig 14), if any phase was
    /// sampled.
    pub occupancy: OccupancyTimeline,
    /// How much the run degraded under the machine's fault plan. All zeros on
    /// a healthy machine.
    pub degradation: DegradationReport,
    /// The fault-timeline events this run actually applied, in order — the
    /// transition log a chaos harness checks against the schedule. Empty for
    /// a static fault plan (and for every run recorded before timelines
    /// existed, hence the serde default).
    #[serde(default)]
    pub transitions: Vec<FaultEvent>,
    /// Allocator free-bytes / (live + free) ratio at the end of the run.
    /// The engine itself has no allocator, so this is `0.0` unless the
    /// harness fills it in from `AffinityAllocator::fragmentation()` (the
    /// multi-tenant churn cells do); serde-defaulted for old recordings.
    #[serde(default)]
    pub fragmentation_ratio: f64,
    /// Per-tenant offload attribution, present when the run installed tenant
    /// contexts via [`SimEngine::set_tenant`]. Empty (and serde-defaulted)
    /// for every single-tenant run.
    #[serde(default)]
    pub tenants: Vec<TenantUsage>,
    /// Where the run's affinity hints came from: `None` for ordinary
    /// (annotated) runs, else `"annotated"`, `"inferred"`, or `"none"` as
    /// stamped by the inference harness. Serde-defaulted for old recordings.
    #[serde(default)]
    pub hint_source: Option<String>,
    /// Number of hints applied from an inferred `AffinityProfile`
    /// (harness-stamped; 0 everywhere else). Serde-defaulted likewise.
    #[serde(default)]
    pub inferred_hints: u64,
}

impl Metrics {
    /// Speedup of this run over `baseline` (cycles ratio).
    pub fn speedup_over(&self, baseline: &Metrics) -> f64 {
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Energy efficiency of this run over `baseline` (inverse energy ratio).
    pub fn energy_eff_over(&self, baseline: &Metrics) -> f64 {
        baseline.energy_pj / self.energy_pj.max(f64::MIN_POSITIVE)
    }

    /// Traffic of this run relative to `baseline` (flit-hop ratio).
    pub fn traffic_vs(&self, baseline: &Metrics) -> f64 {
        self.total_hop_flits as f64 / baseline.total_hop_flits.max(1) as f64
    }

    /// Flit-hops of one class.
    pub fn hop_flits_of(&self, class: TrafficClass) -> u64 {
        match class {
            TrafficClass::Offload => self.hop_flits[0],
            TrafficClass::Data => self.hop_flits[1],
            TrafficClass::Control => self.hop_flits[2],
        }
    }
}

/// The engine's optional event sink, newtyped so [`SimEngine`] keeps its
/// derived `Debug` without demanding `Debug` of every recorder.
#[derive(Default)]
struct RecorderSlot(Option<Box<dyn Recorder>>);

impl fmt::Debug for RecorderSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self.0 {
            Some(_) => "RecorderSlot(attached)",
            None => "RecorderSlot(none)",
        })
    }
}

/// The accounting engine one kernel execution runs against.
#[derive(Debug)]
pub struct SimEngine {
    config: MachineConfig,
    topo: Topology,
    traffic: TrafficMatrix,
    banks: BankCounters,
    dram: DramModel,
    se_ops: Vec<u64>,
    /// Accesses per bank that can produce a capacity miss (excludes
    /// writebacks, full-line stores and immediate re-reads of just-fetched
    /// lines, which are temporal hits by construction).
    miss_eligible: Vec<u64>,
    core_ops: u64,
    private_hits: u64,
    serial_cycles: u64,
    explicit_dram_lines: u64,
    phase: PhaseTracker,
    timeline: OccupancyTimeline,
    /// Failed-bank → spare-bank table, present only when the machine's fault
    /// plan kills banks. `None` leaves every primitive on its original path.
    spare: Option<SpareMap>,
    /// `spare.is_none()`, hoisted so the per-message fast path of a healthy
    /// machine skips the redirect machinery with one predictable branch.
    healthy: bool,
    /// Run-length coalescing buffer (see [`PendingCharge`]). Flushed before
    /// any read of the traffic matrix; every buffered charge lands via the
    /// same `record_n` it would have taken directly, so all accounting —
    /// which is purely additive — is byte-identical either way.
    pending: Vec<PendingCharge>,
    /// Whether charges may be buffered. Off once the packet log is enabled:
    /// coalescing reorders messages across unlike charges, and the DES
    /// replay consumes the log in recording order.
    coalesce: bool,
    /// Degradation observed so far (spare remaps, In-Core fallbacks); routing
    /// counters live in the traffic matrix and merge in at `finish`.
    report: DegradationReport,
    /// Banks whose residency has already been counted as remapped.
    remapped_seen: Vec<bool>,
    /// The fault plan currently in effect: `config.faults` plus every
    /// timeline event applied so far. Equals `config.faults` for the whole
    /// run when the timeline is empty.
    active_faults: FaultPlan,
    /// Cycle-stamped schedule of pending fault events (from the config, or
    /// a thread-installed chaos timeline when the config carries none).
    fault_schedule: FaultTimeline,
    /// Index of the next unapplied schedule event.
    next_fault_event: usize,
    /// Applied events, in order — becomes [`Metrics::transitions`].
    transitions: Vec<FaultEvent>,
    /// Optional event sink; every charge primitive's typed [`Event`] passes
    /// through it before the accounting applies (see [`SimEngine::record`]).
    recorder: RecorderSlot,
    /// Recorder present and enabled, hoisted like `healthy` so the disabled
    /// path costs one predicted branch per event.
    tracing: bool,
    /// Current attribution context: charges land on this tenant's
    /// [`TenantUsage`] record in addition to the global counters.
    tenant: Option<u32>,
    /// Whether *any* tenant context was ever installed. Hoisted like
    /// `tracing`: single-tenant runs never set it, so their `record` path
    /// stays one predicted branch (the `tracing || attributing` test folds
    /// into one load-compare on two adjacent bools).
    attributing: bool,
    /// Per-tenant attributed work, keyed by dense tenant id (linear scan —
    /// tenant counts are small). Becomes [`Metrics::tenants`].
    tenant_usage: Vec<TenantUsage>,
}

impl SimEngine {
    /// Fresh engine for one kernel execution on `config`'s machine. The
    /// machine's [`FaultPlan`] is honored
    /// throughout: traffic routes around dead links, dead banks' residency
    /// and accesses remap to spares, dead SEL3s fall back to In-Core
    /// execution, and slowed banks/controllers stretch their service bounds.
    /// An empty plan takes exactly the original code paths.
    pub fn new(config: MachineConfig) -> Self {
        let topo = Topology::for_machine(&config);
        let traffic = TrafficMatrix::with_faults(
            topo,
            config.link_bytes_per_cycle,
            config.packet_header_bytes,
            &config.faults,
        );
        let banks = BankCounters::new(config.num_banks());
        let dram = DramModel::new(&config);
        let n = config.num_banks() as usize;
        let spare = (!config.faults.failed_banks.is_empty())
            .then(|| SpareMap::new(topo, &config.faults));
        // A thread-local trace capture (installed by e.g. `figures --trace`)
        // or co-access miner (installed by a profiling run) attaches
        // automatically, so a recorder reaches engines constructed deep
        // inside workload executors without signature plumbing. Both at once
        // fan out through a MultiRecorder.
        let recorder: Option<Box<dyn Recorder>> =
            match (trace::thread_trace_installed(), mine::thread_miner_installed()) {
                (true, false) => Some(Box::new(trace::ThreadTraceRecorder)),
                (false, true) => Some(Box::new(mine::ThreadMinerRecorder)),
                (true, true) => {
                    let mut fan = trace::MultiRecorder::new();
                    fan.push(Box::new(trace::ThreadTraceRecorder));
                    fan.push(Box::new(mine::ThreadMinerRecorder));
                    Some(Box::new(fan))
                }
                (false, false) => None,
            };
        // A config-carried timeline wins; otherwise a thread-installed chaos
        // timeline (set by `figures --chaos`) attaches the same way the
        // thread trace does — without signature plumbing. Both empty leaves
        // the engine permanently on its static-plan paths.
        let fault_schedule = if !config.fault_timeline.is_empty() {
            config.fault_timeline.clone()
        } else {
            // Chaos timelines are sampled against the reference machine;
            // sanitize so a smaller mesh drops events it cannot express
            // instead of indexing out of bounds.
            fault::thread_chaos_timeline()
                .map(|t| t.sanitized_for(&config, &config.faults))
                .unwrap_or_default()
        };
        let active_faults = config.faults.clone();
        let mut engine = Self {
            phase: PhaseTracker::new(config.num_banks()),
            timeline: OccupancyTimeline::new(),
            config,
            topo,
            traffic,
            banks,
            dram,
            se_ops: vec![0; n],
            miss_eligible: vec![0; n],
            core_ops: 0,
            private_hits: 0,
            serial_cycles: 0,
            explicit_dram_lines: 0,
            healthy: spare.is_none(),
            spare,
            report: DegradationReport::default(),
            remapped_seen: vec![false; n],
            active_faults,
            fault_schedule,
            next_fault_event: 0,
            transitions: Vec::new(),
            pending: Vec::with_capacity(COALESCE_SLOTS),
            coalesce: true,
            tracing: recorder.is_some(),
            recorder: RecorderSlot(recorder),
            tenant: None,
            attributing: false,
            tenant_usage: Vec::new(),
        };
        // Fire any cycle-0 fault events immediately: a timeline that kills a
        // bank "at birth" must behave exactly like a static `FaultPlan` that
        // never had it.
        engine.advance_faults(0);
        engine
    }

    /// The bank that actually serves accesses homed at `bank`: `bank` itself
    /// when its L3 slice is alive, its spare otherwise. The healthy-machine
    /// fast path is a single branch — no `Option` probe per message.
    #[inline]
    fn serving_bank(&self, bank: BankId) -> BankId {
        if self.healthy {
            return bank;
        }
        match &self.spare {
            Some(s) => s.redirect(bank),
            None => bank,
        }
    }

    // ---------- fault epochs (live recovery) ----------

    /// Fire every scheduled fault event with `cycle <=` the given cycle, in
    /// timeline order. Public cold path: a harness that tracks its own clock
    /// (DES replay, a phase-stepped driver) may place epochs explicitly;
    /// analytic runs also advance automatically — on the engine's own
    /// progress estimate — at every phase end and at finish.
    pub fn advance_faults(&mut self, cycle: u64) {
        while self.next_fault_event < self.fault_schedule.len() {
            let ev = self.fault_schedule.events()[self.next_fault_event];
            if ev.cycle > cycle {
                break;
            }
            self.next_fault_event += 1;
            self.apply_fault_event(ev);
        }
    }

    /// Fault transitions applied so far, in firing order.
    pub fn fault_transitions(&self) -> &[FaultEvent] {
        &self.transitions
    }

    /// The fault plan currently in force (the static plan merged with every
    /// timeline event fired so far).
    pub fn active_faults(&self) -> &FaultPlan {
        &self.active_faults
    }

    #[cold]
    fn apply_fault_event(&mut self, ev: FaultEvent) {
        self.flush_charges();
        let mut plan = self.active_faults.clone();
        ev.change.apply_to(&mut plan);
        self.apply_fault_plan_internal(plan);
        self.transitions.push(ev);
        self.report.fault_epochs += 1;
    }

    /// Swap the machine onto a new fault plan mid-run: the traffic matrix
    /// re-plans its routes incrementally, residency on newly dead banks
    /// migrates to their spares through the real NoC, and in-flight offload
    /// work queued on a dying SEL3 drains to the In-Core fallback. Repairs
    /// bring a bank back for *future* placement only — evacuated lines stay
    /// where they landed (the recovery model is conservative, not clairvoyant).
    fn apply_fault_plan_internal(&mut self, plan: FaultPlan) {
        let n = self.config.num_banks();
        let old_failed: Vec<bool> = (0..n)
            .map(|b| self.spare.as_ref().is_some_and(|s| s.is_failed(b)))
            .collect();
        let new_spare = (!plan.failed_banks.is_empty()).then(|| SpareMap::new(self.topo, &plan));
        // New routes first, so migration flits pay the topology they would
        // actually traverse at this epoch.
        self.traffic.apply_fault_plan(&plan);
        self.dram.apply_fault_plan(&plan);
        for b in 0..n {
            let newly_dead =
                !old_failed[b as usize] && new_spare.as_ref().is_some_and(|s| s.is_failed(b));
            if !newly_dead {
                continue;
            }
            let target = new_spare.as_ref().map_or(b, |s| s.redirect(b));
            let bytes = self.banks.evacuate_resident(b, target);
            if bytes > 0 && target != b {
                let lines = bytes.div_ceil(CACHE_LINE);
                self.record(Event::Traffic {
                    src: b,
                    dst: target,
                    payload_bytes: CACHE_LINE,
                    class: TrafficKind::Data,
                    count: lines,
                });
                self.flush_charges();
                self.report.evacuated_lines += lines;
                self.report.remapped_bytes += bytes;
            }
            if !self.remapped_seen[b as usize] {
                self.remapped_seen[b as usize] = true;
                self.report.remapped_banks += 1;
            }
            // In-flight offloads drain to the In-Core fallback: the tile
            // core finishes what its dead SEL3 had queued.
            self.core_ops += std::mem::take(&mut self.se_ops[b as usize]);
        }
        self.spare = new_spare;
        self.healthy = self.spare.is_none();
        self.active_faults = plan;
    }

    /// Place pending fault epochs on the run's own clock: the analytic cycle
    /// estimate over the counters accumulated so far is "now". Guarded by
    /// callers on `next_fault_event`, so fault-free runs never reach it.
    #[cold]
    fn advance_faults_by_progress(&mut self) {
        self.flush_charges();
        let now = self.current_breakdown().total();
        self.advance_faults(now);
    }

    /// Attach an event recorder: every subsequent charge primitive emits its
    /// typed [`Event`]s into it. The recorder sees events *pre-coalescing*
    /// (in primitive order, before the run-length buffer merges them) and
    /// *post-fault-redirect* (against the bank that actually served them).
    /// Recording is strictly observational — accounting stays byte-identical
    /// with any recorder attached or none, pinned by the recorder-equivalence
    /// property tests.
    pub fn set_recorder(&mut self, rec: Box<dyn Recorder>) {
        self.tracing = rec.is_enabled();
        self.recorder = RecorderSlot(Some(rec));
    }

    /// Detach and return the recorder, if any (e.g. to export its trace).
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.tracing = false;
        self.recorder.0.take()
    }

    /// Install (or clear, with `None`) the tenant every subsequent charge is
    /// attributed to. Attribution is strictly additive — global counters,
    /// timing and energy are byte-identical with or without tenant contexts
    /// (pinned by the attribution-equivalence test) — so single-tenant runs
    /// pay nothing and multi-tenant runs get a per-tenant ledger for free.
    ///
    /// An attached recorder sees an [`Event::TenantSwitch`] at each boundary
    /// (`u32::MAX` encodes "no tenant"), so traces show who owned each span.
    pub fn set_tenant(&mut self, tenant: Option<TenantId>) {
        let id = tenant.map(|t| t.0);
        if self.tenant == id {
            return;
        }
        if self.tracing {
            let marker = Event::TenantSwitch {
                tenant: id.unwrap_or(u32::MAX),
            };
            if let Some(rec) = self.recorder.0.as_deref_mut() {
                rec.record(&marker);
            }
        }
        self.tenant = id;
        // Once any tenant has been seen, stay on the attributing path even
        // between contexts so TenantUsage lookups remain consistent; the
        // `tenant == None` case inside attribute() is a cheap early-out.
        self.attributing = self.attributing || id.is_some();
    }

    /// Per-tenant work attributed so far (dense insertion order).
    pub fn tenant_usage(&self) -> &[TenantUsage] {
        &self.tenant_usage
    }

    /// The attributed-usage record for `tenant`, created on first use.
    fn tally(&mut self, tenant: u32) -> &mut TenantUsage {
        if let Some(i) = self.tenant_usage.iter().position(|u| u.tenant == tenant) {
            return &mut self.tenant_usage[i];
        }
        self.tenant_usage.push(TenantUsage::new(tenant, ""));
        self.tenant_usage
            .last_mut()
            .expect("just pushed a usage record")
    }

    /// Attribute one event to the current tenant context, if any. Only the
    /// work-shaped events carry attribution; structural events (residency,
    /// phases, NoC-model samples) stay global.
    fn attribute(&mut self, ev: &Event) {
        let Some(t) = self.tenant else { return };
        match *ev {
            Event::Traffic { count, .. } => self.tally(t).traffic_msgs += count,
            Event::SeOps { count, .. } => self.tally(t).se_ops += count,
            Event::CoreOps { count } => self.tally(t).core_ops += count,
            Event::DramAccess { lines, .. } => self.tally(t).dram_lines += lines,
            _ => {}
        }
    }

    /// The typed choke point every charge primitive routes through: the
    /// attached recorder (if any) observes `ev`, then the accounting applies
    /// it. `record` is public — callers may feed events directly and get
    /// exactly the named primitives' accounting, minus their fault-redirect
    /// sugar (events describe post-redirect reality).
    #[inline(always)]
    pub fn record(&mut self, ev: Event) {
        if self.tracing || self.attributing {
            return self.record_slow(ev);
        }
        self.apply(&ev);
    }

    /// The tracing/attributing half of [`Self::record`], outlined — the
    /// recorder observes, the tenant ledger attributes, then the identical
    /// [`Self::apply`]. Keeping the *whole* slow path out of line is
    /// load-bearing for the disabled path: the inlined `record` then never
    /// takes the event's address, so the event dissolves into registers, the
    /// match folds to its one matching arm, and each charge primitive
    /// compiles down to the same direct counter updates it was before the
    /// choke point existed (the `hotpath` bench in `aff-bench` is the
    /// regression guard).
    #[inline(never)]
    fn record_slow(&mut self, ev: Event) {
        if self.tracing {
            if let Some(rec) = self.recorder.0.as_deref_mut() {
                rec.record(&ev);
            }
        }
        if self.attributing {
            self.attribute(&ev);
        }
        self.apply(&ev);
    }

    /// Apply one event to the accounting state. `inline(always)` is
    /// load-bearing: every charge primitive constructs its event with a
    /// known discriminant, so inlining lets the match fold to the single
    /// matching arm and the event never materializes in memory.
    #[inline(always)]
    fn apply(&mut self, ev: &Event) {
        match *ev {
            Event::Traffic {
                src,
                dst,
                payload_bytes,
                class,
                count,
            } => self.charge(src, dst, payload_bytes, class.into(), count),
            Event::BankAccess { bank, count, fetch } => {
                self.banks.access(bank, count);
                if fetch {
                    self.miss_eligible[bank as usize] += count;
                }
            }
            Event::BankAtomic { bank, count, hops } => {
                self.banks.atomic(bank, count);
                self.miss_eligible[bank as usize] += count;
                self.phase.record_atomics(bank, count, hops);
            }
            Event::BankResident { bank, bytes } => self.banks.add_resident(bank, bytes),
            Event::CoreOps { count } => self.core_ops += count,
            Event::SeOps { bank, count } => {
                // In-Core fallback: a dead SEL3's work runs on the tile core.
                if self.spare.as_ref().is_some_and(|s| s.is_failed(bank)) {
                    self.core_ops += count;
                } else {
                    self.se_ops[bank as usize] += count;
                }
            }
            Event::PrivateHits { count } => self.private_hits += count,
            Event::ChainCycles { cycles } => self.serial_cycles += cycles,
            Event::PhaseBegin => self.phase.begin(),
            Event::PhaseEnd => {
                if let Some(s) = self.phase.end(&self.config) {
                    self.timeline.push(s);
                }
                // Phase boundaries are the natural epoch points of an
                // analytic run; the guard keeps the fault-free fast path one
                // predictable branch.
                if self.next_fault_event < self.fault_schedule.len() {
                    self.advance_faults_by_progress();
                }
            }
            // DRAM accesses are charged by the DramModel at its call sites;
            // the NoC models' events carry no analytic accounting, tenant
            // switches are handled before apply (attribution), and profile
            // touches exist only for the co-access miner.
            Event::DramAccess { .. }
            | Event::RouterActive { .. }
            | Event::MessageDelivered { .. }
            | Event::TenantSwitch { .. }
            | Event::ProfileTouch { .. } => {}
        }
    }

    /// Buffer one traffic charge, collapsing it into a pending run when the
    /// `(src, dst, payload, class)` tuple matches. Every traffic counter is
    /// additive and order-independent, and `record_n` of a merged run is
    /// exactly `n` single records (pinned by the matrix proptests), so the
    /// figures are byte-identical with coalescing on or off. With the packet
    /// log enabled the buffer is bypassed entirely — log order is
    /// load-bearing for DES replay.
    #[inline]
    fn charge(
        &mut self,
        src: BankId,
        dst: BankId,
        payload_bytes: u64,
        class: TrafficClass,
        count: u64,
    ) {
        if !self.coalesce {
            self.traffic.record_n(src, dst, payload_bytes, class, count);
            return;
        }
        for p in &mut self.pending {
            if p.src == src && p.dst == dst && p.payload_bytes == payload_bytes && p.class == class
            {
                p.count += count;
                return;
            }
        }
        if self.pending.len() == COALESCE_SLOTS {
            self.flush_charges();
        }
        self.pending.push(PendingCharge {
            src,
            dst,
            payload_bytes,
            class,
            count,
        });
    }

    /// Drain the coalescing buffer into the traffic matrix.
    fn flush_charges(&mut self) {
        for p in self.pending.drain(..) {
            self.traffic
                .record_n(p.src, p.dst, p.payload_bytes, p.class, p.count);
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The mesh topology.
    pub fn topo(&self) -> Topology {
        self.topo
    }

    /// Direct read access to the traffic matrix (tests, DES replay). Takes
    /// `&mut self` so pending coalesced charges land before the read.
    #[deprecated(note = "use traffic_mut (or traffic_snapshot for &self reads)")]
    pub fn traffic(&mut self) -> &TrafficMatrix {
        self.traffic_mut()
    }

    /// The authoritative view of the traffic matrix: pending coalesced
    /// charges are flushed first, so every primitive called so far is
    /// reflected. Use this for tests, DES replay, and anything that compares
    /// totals.
    pub fn traffic_mut(&mut self) -> &TrafficMatrix {
        self.flush_charges();
        &self.traffic
    }

    /// Borrow the traffic matrix *without* flushing. A bounded number of
    /// charge runs (at most the coalescing window, 4 slots) may still be
    /// pending, so totals can lag the primitives slightly; use
    /// [`traffic_mut`](Self::traffic_mut) when exact totals matter. This is
    /// the only way to peek at traffic from `&self` contexts (e.g. progress
    /// reporting mid-run).
    pub fn traffic_snapshot(&self) -> &TrafficMatrix {
        &self.traffic
    }

    /// Enable packet logging on the traffic matrix for DES replay. Turns
    /// charge coalescing off — the log's message order is what the DES model
    /// replays, so every later charge records write-through.
    pub fn enable_packet_log(&mut self) {
        self.flush_charges();
        self.coalesce = false;
        self.traffic.enable_log();
    }

    /// Toggle charge coalescing (on by default). Pending charges are
    /// flushed first, so the switch never drops or reorders accounting.
    /// With a packet log active, coalescing stays off regardless.
    pub fn set_coalescing(&mut self, on: bool) {
        self.flush_charges();
        self.coalesce = on && self.traffic.packets().is_none();
    }

    /// Bank counters accumulated so far.
    pub fn banks(&self) -> &BankCounters {
        &self.banks
    }

    // ---------- compute ----------

    /// Charge `n` ops on the OOO cores.
    pub fn core_ops(&mut self, n: u64) {
        self.record(Event::CoreOps { count: n });
    }

    /// Charge `n` ops on the stream engine / spare SMT thread at `bank`.
    /// When `bank`'s L3 slice (and with it its SEL3) is dead, the tile's
    /// core executes the work instead — the In-Core fallback.
    pub fn se_ops(&mut self, bank: BankId, n: u64) {
        self.record(Event::SeOps { bank, count: n });
    }

    /// Charge `n` private L1/L2 hits (energy only; they never reach the NoC).
    pub fn private_hits(&mut self, n: u64) {
        self.record(Event::PrivateHits { count: n });
    }

    // ---------- residency (capacity model inputs) ----------

    /// Declare `bytes` resident at `bank` for the capacity model. Residency
    /// homed at a dead bank lives at its spare instead (and is reported).
    pub fn register_resident(&mut self, bank: BankId, bytes: u64) {
        let target = self.serving_bank(bank);
        if target != bank {
            if !self.remapped_seen[bank as usize] {
                self.remapped_seen[bank as usize] = true;
                self.report.remapped_banks += 1;
            }
            self.report.remapped_bytes += bytes;
        }
        self.record(Event::BankResident {
            bank: target,
            bytes,
        });
    }

    /// Import a whole per-bank residency vector (e.g. from
    /// `AffinityAllocator::resident_per_bank`).
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the bank count.
    pub fn import_residency(&mut self, per_bank: &[u64]) {
        assert_eq!(per_bank.len(), self.config.num_banks() as usize);
        for (b, &bytes) in per_bank.iter().enumerate() {
            self.register_resident(b as u32, bytes);
        }
    }

    /// Declare a structure spread evenly across all banks (dead banks' shares
    /// land on their spares).
    pub fn register_resident_spread(&mut self, bytes: u64) {
        let n = u64::from(self.config.num_banks());
        let per = bytes / n;
        for b in 0..self.config.num_banks() {
            self.register_resident(b, per);
        }
    }

    /// Force `lines` DRAM line accesses regardless of the capacity model
    /// (cold first-touch streaming that no cache can absorb).
    pub fn cold_dram_lines(&mut self, bank: BankId, lines: u64) {
        let target = self.serving_bank(bank);
        let rec: Option<&mut dyn Recorder> = if self.tracing {
            self.recorder.0.as_mut().map(|b| b.as_mut() as _)
        } else {
            None
        };
        self.dram
            .record_misses_rec(target, lines, &mut self.traffic, rec);
        self.explicit_dram_lines += lines;
        if self.attributing {
            // The DramModel charged past `record`, so attribute here.
            if let Some(t) = self.tenant {
                self.tally(t).dram_lines += lines;
            }
        }
        self.record(Event::BankAccess {
            bank: target,
            count: lines,
            fetch: false,
        });
    }

    // ---------- In-Core primitives ----------

    /// Core at tile `core` reads `lines` cache lines homed at `bank`:
    /// request header out, full line back.
    pub fn core_read_lines(&mut self, core: BankId, bank: BankId, lines: u64) {
        let bank = self.serving_bank(bank);
        self.record(Event::Traffic {
            src: core,
            dst: bank,
            payload_bytes: 0,
            class: TrafficKind::Control,
            count: lines,
        });
        self.record(Event::Traffic {
            src: bank,
            dst: core,
            payload_bytes: CACHE_LINE,
            class: TrafficKind::Data,
            count: lines,
        });
        self.record(Event::BankAccess {
            bank,
            count: lines,
            fetch: true,
        });
    }

    /// Core writes `lines` cache lines homed at `bank`: a write-allocate
    /// cache pays read-for-ownership (request + fill) before the eventual
    /// writeback. NSC store streams skip this — they own the whole line by
    /// construction and "write directly to L3" (§2.1).
    pub fn core_write_lines(&mut self, core: BankId, bank: BankId, lines: u64) {
        let bank = self.serving_bank(bank);
        self.record(Event::Traffic {
            src: core,
            dst: bank,
            payload_bytes: 0,
            class: TrafficKind::Control,
            count: lines,
        });
        self.record(Event::Traffic {
            src: bank,
            dst: core,
            payload_bytes: CACHE_LINE,
            class: TrafficKind::Data,
            count: lines,
        });
        self.record(Event::Traffic {
            src: core,
            dst: bank,
            payload_bytes: CACHE_LINE,
            class: TrafficKind::Data,
            count: lines,
        });
        // Only the RFO fill can miss; the writeback is not a fetch.
        self.record(Event::BankAccess {
            bank,
            count: lines,
            fetch: true,
        });
        self.record(Event::BankAccess {
            bank,
            count: lines,
            fetch: false,
        });
    }

    /// Core executes an atomic on a line homed at `bank`. `contended` charges
    /// the extra coherence round trip of bouncing an exclusive line between
    /// cores (§7.2: in-core pushing suffers coherence misses under
    /// contention).
    pub fn core_atomic(&mut self, core: BankId, bank: BankId, contended: bool, n: u64) {
        let bank = self.serving_bank(bank);
        self.record(Event::Traffic {
            src: core,
            dst: bank,
            payload_bytes: 0,
            class: TrafficKind::Control,
            count: n,
        });
        self.record(Event::Traffic {
            src: bank,
            dst: core,
            payload_bytes: CACHE_LINE,
            class: TrafficKind::Data,
            count: n,
        });
        if contended {
            // Invalidation + ownership transfer from the previous writer.
            self.record(Event::Traffic {
                src: bank,
                dst: core,
                payload_bytes: 0,
                class: TrafficKind::Control,
                count: n,
            });
            self.record(Event::Traffic {
                src: core,
                dst: bank,
                payload_bytes: CACHE_LINE,
                class: TrafficKind::Data,
                count: n,
            });
        }
        let hops = u64::from(self.topo.manhattan(core, bank));
        self.record(Event::BankAtomic {
            bank,
            count: n,
            hops,
        });
    }

    // ---------- Near-L3 primitives ----------

    /// Offload a stream graph: one configure packet per stream from the
    /// core's SEcore to the stream's first bank (Offload class), plus the
    /// fixed SE computation-init latency.
    pub fn offload_config(&mut self, core: BankId, first_bank: BankId, num_streams: u64) {
        let target = self.serving_bank(first_bank);
        if target != first_bank {
            // The stream's home SEL3 is dead: the config lands at the spare
            // and the stream runs In-Core at the tile instead.
            self.report.incore_fallback_streams += num_streams;
        }
        self.record(Event::Traffic {
            src: core,
            dst: target,
            payload_bytes: MIGRATE_STATE_BYTES,
            class: TrafficKind::Offload,
            count: num_streams,
        });
        self.record(Event::ChainCycles {
            cycles: self.config.sel3_compute_init_latency,
        });
    }

    /// Multicast a stream-graph configuration to every bank's SEL3 (sliced
    /// affine streams): one configure packet per stream per bank, one
    /// compute-init latency (banks configure in parallel).
    pub fn offload_config_multicast(&mut self, core: BankId, num_streams: u64) {
        for b in 0..self.config.num_banks() {
            let target = self.serving_bank(b);
            if target != b {
                self.report.incore_fallback_streams += num_streams;
            }
            self.record(Event::Traffic {
                src: core,
                dst: target,
                payload_bytes: MIGRATE_STATE_BYTES,
                class: TrafficKind::Offload,
                count: num_streams,
            });
        }
        self.record(Event::ChainCycles {
            cycles: self.config.sel3_compute_init_latency,
        });
    }

    /// Coarse-grained flow control: one credit message per [`CREDIT_BATCH`]
    /// iterations (Control class).
    pub fn credits(&mut self, core: BankId, bank: BankId, iterations: u64) {
        let bank = self.serving_bank(bank);
        let msgs = iterations.div_ceil(CREDIT_BATCH);
        self.record(Event::Traffic {
            src: core,
            dst: bank,
            payload_bytes: 0,
            class: TrafficKind::Control,
            count: msgs,
        });
    }

    /// A stream migrates from `from` to `to`, carrying its architectural
    /// state (Offload class).
    pub fn migrate(&mut self, from: BankId, to: BankId, n: u64) {
        let (f, t) = (self.serving_bank(from), self.serving_bank(to));
        if f != from || t != to {
            self.report.rerouted_migrations += n;
        }
        self.record(Event::Traffic {
            src: f,
            dst: t,
            payload_bytes: MIGRATE_STATE_BYTES,
            class: TrafficKind::Offload,
            count: n,
        });
    }

    /// Producer stream at `from` forwards `n` values of `bytes` each to the
    /// consumer stream at `to` (Data class). Same-bank forwarding is free on
    /// the NoC — the whole point of affinity alloc.
    pub fn forward(&mut self, from: BankId, to: BankId, bytes: u64, n: u64) {
        self.record(Event::Traffic {
            src: from,
            dst: to,
            payload_bytes: bytes,
            class: TrafficKind::Data,
            count: n,
        });
    }

    /// Stream at `bank` reads `lines` lines of its own bank's data. When the
    /// bank's L3 slice is dead the data lives at its spare, so the (In-Core)
    /// consumer at the tile pays a request/response round trip to it.
    pub fn bank_read_lines(&mut self, bank: BankId, lines: u64) {
        let target = self.serving_bank(bank);
        if target != bank {
            self.record(Event::Traffic {
                src: bank,
                dst: target,
                payload_bytes: 0,
                class: TrafficKind::Control,
                count: lines,
            });
            self.record(Event::Traffic {
                src: target,
                dst: bank,
                payload_bytes: CACHE_LINE,
                class: TrafficKind::Data,
                count: lines,
            });
        }
        self.record(Event::BankAccess {
            bank: target,
            count: lines,
            fetch: true,
        });
    }

    /// Stream at `bank` re-reads `lines` lines another stream just fetched
    /// (sibling offset streams of a stencil): bank service is paid, but the
    /// lines are temporal hits and cannot miss.
    pub fn bank_read_lines_reuse(&mut self, bank: BankId, lines: u64) {
        let target = self.serving_bank(bank);
        if target != bank {
            self.record(Event::Traffic {
                src: bank,
                dst: target,
                payload_bytes: 0,
                class: TrafficKind::Control,
                count: lines,
            });
            self.record(Event::Traffic {
                src: target,
                dst: bank,
                payload_bytes: CACHE_LINE,
                class: TrafficKind::Data,
                count: lines,
            });
        }
        self.record(Event::BankAccess {
            bank: target,
            count: lines,
            fetch: false,
        });
    }

    /// Stream at `bank` writes `lines` full lines to its own bank. NSC store
    /// streams own the whole line (§2.1), so there is no fetch to miss. Dead
    /// banks' lines travel to the spare instead.
    pub fn bank_write_lines(&mut self, bank: BankId, lines: u64) {
        let target = self.serving_bank(bank);
        if target != bank {
            self.record(Event::Traffic {
                src: bank,
                dst: target,
                payload_bytes: CACHE_LINE,
                class: TrafficKind::Data,
                count: lines,
            });
        }
        self.record(Event::BankAccess {
            bank: target,
            count: lines,
            fetch: false,
        });
    }

    /// Indirect remote access: request header from `from` to `to`,
    /// `resp_bytes` of response back, `n` times. The access executes at the
    /// remote bank.
    pub fn indirect(&mut self, from: BankId, to: BankId, resp_bytes: u64, n: u64) {
        let to = self.serving_bank(to);
        self.record(Event::Traffic {
            src: from,
            dst: to,
            payload_bytes: 0,
            class: TrafficKind::Control,
            count: n,
        });
        if resp_bytes > 0 {
            self.record(Event::Traffic {
                src: to,
                dst: from,
                payload_bytes: resp_bytes,
                class: TrafficKind::Data,
                count: n,
            });
        }
        self.record(Event::BankAccess {
            bank: to,
            count: n,
            fetch: true,
        });
        self.record(Event::SeOps { bank: to, count: n });
    }

    /// Remote atomic executed at `to` on behalf of a stream at `from`
    /// (in-place at the bank — no coherence bounce, §7.2). A one-word
    /// outcome flows back (predication input for dependent streams).
    pub fn remote_atomic(&mut self, from: BankId, to: BankId, n: u64) {
        let to = self.serving_bank(to);
        self.record(Event::Traffic {
            src: from,
            dst: to,
            payload_bytes: 8,
            class: TrafficKind::Control,
            count: n,
        });
        self.record(Event::Traffic {
            src: to,
            dst: from,
            payload_bytes: 8,
            class: TrafficKind::Data,
            count: n,
        });
        self.record(Event::SeOps { bank: to, count: n });
        let hops = u64::from(self.topo.manhattan(from, to));
        self.record(Event::BankAtomic {
            bank: to,
            count: n,
            hops,
        });
    }

    // ---------- serial latency ----------

    /// Add serial dependence-chain latency that bandwidth cannot hide:
    /// `hops` link hops plus `accesses` L3 accesses on the critical path.
    pub fn chain(&mut self, hops: u64, accesses: u64) {
        let cycles = hops * self.config.hop_latency + accesses * self.config.l3_latency;
        self.record(Event::ChainCycles { cycles });
    }

    /// Add raw serial cycles on the critical path.
    pub fn chain_cycles(&mut self, cycles: u64) {
        self.record(Event::ChainCycles { cycles });
    }

    // ---------- phases (Fig 14) ----------

    /// Begin an occupancy-sampled phase (e.g. one BFS iteration).
    pub fn begin_phase(&mut self) {
        self.record(Event::PhaseBegin);
    }

    /// End the current phase, producing one occupancy snapshot.
    pub fn end_phase(&mut self) {
        self.record(Event::PhaseEnd);
    }

    // ---------- finish ----------

    /// Resolve capacity misses, compute the cycle estimate, and produce
    /// [`Metrics`]. Consumes the engine — one engine per kernel execution.
    #[deprecated(note = "use try_finish")]
    pub fn finish(self) -> Metrics {
        self.finish_inner()
    }

    /// The analytic cycle breakdown over the counters accumulated so far.
    /// Callers flush pending coalesced charges first (capacity misses and
    /// fault epochs write the traffic matrix directly, so both call sites
    /// are exact). Slowed banks pay the *currently active* fault plan's
    /// multiplier — identical to the static plan when no timeline is set.
    fn current_breakdown(&self) -> CycleBreakdown {
        let aggregate_issue =
            u64::from(self.config.core_issue_width).max(1) * u64::from(self.config.num_banks());
        // Busiest bank's service time, with slowed banks paying their fault
        // multiplier per access. With no slowed banks this is exactly
        // max_accesses / bank_accesses_per_cycle as before.
        let weighted_bank_accesses = (0..self.config.num_banks())
            .map(|b| self.banks.accesses_of(b) * self.active_faults.bank_slowdown(b))
            .max()
            .unwrap_or(0);
        CycleBreakdown {
            core_compute: self.core_ops / aggregate_issue,
            se_compute: self.se_ops.iter().copied().max().unwrap_or(0),
            bank_service: (weighted_bank_accesses as f64 / self.config.bank_accesses_per_cycle)
                as u64,
            link: self.traffic.bottleneck_link_flits(),
            dram: self.dram.activity().service_cycles,
            chain: self.serial_cycles,
        }
    }

    /// Shared body of [`finish`](Self::finish) and
    /// [`try_finish`](Self::try_finish); both produce byte-identical metrics.
    fn finish_inner(mut self) -> Metrics {
        self.flush_charges();
        // Any fault events the phase boundaries did not reach fire now, at
        // the final progress estimate — events scheduled beyond the run's
        // end stay unfired (the machine outlived them).
        if self.next_fault_event < self.fault_schedule.len() {
            self.advance_faults_by_progress();
        }
        // Capacity misses: each bank's accesses miss at the rate its resident
        // working set exceeds its capacity.
        let mut total_misses = 0u64;
        let total_accesses = self.banks.total_accesses();
        for b in 0..self.config.num_banks() {
            let rate = capacity::miss_rate(self.banks.resident_of(b), self.config.l3_bank_bytes);
            if rate > 0.0 {
                let misses = (self.miss_eligible[b as usize] as f64 * rate) as u64;
                let rec: Option<&mut dyn Recorder> = if self.tracing {
                    self.recorder.0.as_mut().map(|r| r.as_mut() as _)
                } else {
                    None
                };
                self.dram
                    .record_misses_rec(b, misses, &mut self.traffic, rec);
                total_misses += misses;
            }
        }
        total_misses += self.explicit_dram_lines;

        let breakdown = self.current_breakdown();
        let cycles = breakdown.total().max(1);

        let mut report = self.report;
        report.merge(&self.traffic.routing_degradation());
        if let Some(s) = &self.spare {
            report.masked_capacity_bytes = s.masked_capacity_bytes(self.config.l3_bank_bytes);
        }

        let energy = EnergyBreakdown {
            noc_hop_flits: self.traffic.total_hop_flits(),
            l3_accesses: total_accesses,
            private_accesses: self.private_hits,
            dram_accesses: self.dram.accesses(),
            core_ops: self.core_ops,
            se_ops: self.se_ops.iter().sum(),
            cycles,
        };
        let model = EnergyModel::default();

        Metrics {
            cycles,
            breakdown,
            hop_flits: [
                self.traffic.hop_flits(TrafficClass::Offload),
                self.traffic.hop_flits(TrafficClass::Data),
                self.traffic.hop_flits(TrafficClass::Control),
            ],
            total_hop_flits: self.traffic.total_hop_flits(),
            noc_utilization: self.traffic.utilization(),
            l3_miss_rate: if total_accesses + self.explicit_dram_lines == 0 {
                0.0
            } else {
                total_misses as f64 / (total_accesses + self.explicit_dram_lines) as f64
            },
            dram_accesses: self.dram.accesses(),
            energy_pj: energy.total_pj(&model),
            energy,
            bank_imbalance: self.banks.access_imbalance(),
            occupancy: self.timeline,
            degradation: report,
            transitions: self.transitions,
            fragmentation_ratio: 0.0,
            tenants: self.tenant_usage,
            hint_source: None,
            inferred_hints: 0,
        }
    }

    /// [`SimEngine::finish`] under the machine's
    /// [`RunBudget`](aff_sim_core::error::RunBudget): when the
    /// cycle estimate exceeds `budget.max_cycles` the run reports
    /// [`SimError::BudgetExhausted`] instead of returning metrics, so a
    /// sweep can refuse to merge results from a run that blew its ceiling.
    pub fn try_finish(self) -> Result<Metrics, SimError> {
        let budget = self.config.budget;
        let metrics = self.finish_inner();
        if let Some(limit) = budget.max_cycles {
            if metrics.cycles > limit {
                return Err(SimError::BudgetExhausted {
                    budget: BudgetKind::Cycles,
                    limit,
                    reached: metrics.cycles,
                });
            }
        }
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SimEngine {
        SimEngine::new(MachineConfig::paper_default())
    }

    fn fin(e: SimEngine) -> Metrics {
        e.try_finish().expect("unlimited budget")
    }

    #[test]
    fn empty_run_is_one_cycle() {
        let m = fin(engine());
        assert_eq!(m.cycles, 1);
        assert_eq!(m.total_hop_flits, 0);
        assert_eq!(m.l3_miss_rate, 0.0);
    }

    #[test]
    fn try_finish_enforces_the_machine_cycle_budget() {
        use aff_sim_core::error::RunBudget;
        // Unlimited budget: identical to finish().
        let m = engine().try_finish().expect("unlimited budget");
        assert_eq!(m.cycles, 1);
        // A 1-cycle ceiling admits the empty run but rejects a loaded one.
        let cfg =
            MachineConfig::paper_default().with_budget(RunBudget::unlimited().with_max_cycles(1));
        assert!(SimEngine::new(cfg.clone()).try_finish().is_ok());
        let mut e = SimEngine::new(cfg);
        e.core_ops(1 << 20);
        let err = e.try_finish().expect_err("2^20 ops blow a 1-cycle ceiling");
        assert!(matches!(
            err,
            SimError::BudgetExhausted {
                budget: BudgetKind::Cycles,
                limit: 1,
                ..
            }
        ));
    }

    #[test]
    fn coalesced_charges_match_write_through() {
        // The same primitive sequence through a coalescing engine and a
        // write-through one (packet logging turns coalescing off) must
        // produce identical accounting.
        let drive = |e: &mut SimEngine| {
            e.offload_config_multicast(0, 2);
            for i in 0..200u64 {
                let b = (i % 3) as u32;
                e.bank_read_lines(b, 1);
                e.remote_atomic(b, 9, 1);
                e.indirect(9, b, 8, 1);
                e.migrate(b, (b + 1) % 64, 1);
            }
            e.core_read_lines(0, 9, 50);
            e.forward(0, 1, 24, 1000);
        };
        let mut a = engine();
        drive(&mut a);
        let mut b = engine();
        b.enable_packet_log();
        drive(&mut b);
        let (ma, mb) = (fin(a), fin(b));
        assert_eq!(ma.cycles, mb.cycles);
        assert_eq!(ma.total_hop_flits, mb.total_hop_flits);
        assert_eq!(ma.breakdown, mb.breakdown);
        assert_eq!(ma.dram_accesses, mb.dram_accesses);
        for c in [TrafficClass::Offload, TrafficClass::Data, TrafficClass::Control] {
            assert_eq!(ma.hop_flits_of(c), mb.hop_flits_of(c));
        }
    }

    #[test]
    fn traffic_accessor_flushes_pending_charges() {
        let mut e = engine();
        e.remote_atomic(0, 9, 1); // fewer charges than one coalescing window
        assert!(e.traffic_mut().total_hop_flits() > 0);
    }

    #[test]
    fn traffic_snapshot_lags_by_at_most_the_coalescing_window() {
        let mut e = engine();
        e.remote_atomic(0, 9, 1); // two charge runs: both fit the buffer
        assert_eq!(
            e.traffic_snapshot().total_hop_flits(),
            0,
            "snapshot does not flush"
        );
        let flushed = e.traffic_mut().total_hop_flits();
        assert!(flushed > 0);
        assert_eq!(
            e.traffic_snapshot().total_hop_flits(),
            flushed,
            "after a flush the snapshot agrees"
        );
    }

    /// Compat pin: the deprecated [`SimEngine::traffic`] must stay identical
    /// to [`SimEngine::traffic_mut`] (both flush pending charges).
    #[test]
    #[allow(deprecated)]
    fn traffic_matches_traffic_mut() {
        let mut a = engine();
        a.remote_atomic(0, 9, 3);
        let want = a.traffic_mut().total_hop_flits();
        let mut b = engine();
        b.remote_atomic(0, 9, 3);
        assert_eq!(b.traffic().total_hop_flits(), want);
    }

    /// Compat pin: the deprecated [`SimEngine::finish`] must stay identical
    /// to [`SimEngine::try_finish`] on an unlimited budget.
    #[test]
    #[allow(deprecated)]
    fn finish_matches_try_finish() {
        let mut a = engine();
        busy_run(&mut a);
        let mut b = engine();
        busy_run(&mut b);
        let (ma, mb) = (a.finish(), fin(b));
        assert_eq!(ma.cycles, mb.cycles);
        assert_eq!(ma.total_hop_flits, mb.total_hop_flits);
        assert_eq!(ma.breakdown, mb.breakdown);
        assert_eq!(ma.dram_accesses, mb.dram_accesses);
    }

    #[test]
    fn attached_recorder_is_observational() {
        use aff_sim_core::trace::TraceRecorder;
        let mut plain = engine();
        busy_run(&mut plain);
        let mut traced = engine();
        traced.set_recorder(Box::new(TraceRecorder::default()));
        busy_run(&mut traced);
        let (mp, mt) = (fin(plain), fin(traced));
        assert_eq!(mp.cycles, mt.cycles);
        assert_eq!(mp.total_hop_flits, mt.total_hop_flits);
        assert_eq!(mp.breakdown, mt.breakdown);
        assert_eq!(mp.dram_accesses, mt.dram_accesses);
        assert_eq!(mp.energy, mt.energy);
    }

    #[test]
    fn disabled_recorder_does_not_enable_tracing() {
        use aff_sim_core::trace::NullRecorder;
        let mut e = engine();
        e.set_recorder(Box::new(NullRecorder));
        busy_run(&mut e);
        assert!(e.take_recorder().is_some(), "slot holds the null recorder");
        let m = fin(e);
        assert!(m.total_hop_flits > 0);
    }

    #[test]
    fn thread_capture_attaches_to_new_engines() {
        trace::install_thread_trace(1 << 14);
        let mut e = engine(); // picks the capture up in new()
        busy_run(&mut e);
        let direct = e.banks().clone();
        let cap = trace::take_thread_trace().expect("capture installed");
        assert!(cap.total_seen() > 0, "engine forwarded events");
        // Replaying the captured bank events into fresh counters reproduces
        // the engine's accounting exactly — one stream, two consumers.
        let mut replayed = BankCounters::new(direct.num_banks());
        for te in cap.events() {
            replayed.apply(&te.event);
        }
        assert_eq!(replayed, direct);
        fin(e);
    }

    #[test]
    fn record_is_equivalent_to_the_named_primitives() {
        let mut a = engine();
        a.core_read_lines(0, 9, 100);
        let mut b = engine();
        b.record(Event::Traffic {
            src: 0,
            dst: 9,
            payload_bytes: 0,
            class: TrafficKind::Control,
            count: 100,
        });
        b.record(Event::Traffic {
            src: 9,
            dst: 0,
            payload_bytes: CACHE_LINE,
            class: TrafficKind::Data,
            count: 100,
        });
        b.record(Event::BankAccess {
            bank: 9,
            count: 100,
            fetch: true,
        });
        let (ma, mb) = (fin(a), fin(b));
        assert_eq!(ma.cycles, mb.cycles);
        assert_eq!(ma.total_hop_flits, mb.total_hop_flits);
        assert_eq!(ma.breakdown, mb.breakdown);
        assert_eq!(ma.dram_accesses, mb.dram_accesses);
    }

    #[test]
    fn core_read_charges_round_trip() {
        let mut e = engine();
        e.core_read_lines(0, 9, 100);
        let m = fin(e);
        // 0->9 is 2 hops: request 1 flit, response 3 flits (64+8 = 72B).
        assert_eq!(m.hop_flits_of(TrafficClass::Control), 200);
        assert_eq!(m.hop_flits_of(TrafficClass::Data), 600);
    }

    #[test]
    fn same_bank_forwarding_is_free() {
        let mut e = engine();
        e.forward(5, 5, 4, 1_000_000);
        let m = fin(e);
        assert_eq!(m.total_hop_flits, 0);
    }

    #[test]
    fn link_bound_drives_cycles() {
        let mut e = engine();
        // Heavy forwarding over one link dominates all other bounds.
        e.forward(0, 1, 24, 100_000);
        let m = fin(e);
        assert_eq!(m.breakdown.link, 100_000);
        assert_eq!(m.cycles, 100_000);
    }

    #[test]
    fn bank_bound_counts_busiest_bank() {
        let mut e = engine();
        e.bank_read_lines(3, 5_000);
        e.bank_read_lines(4, 100);
        let m = fin(e);
        assert_eq!(m.breakdown.bank_service, 5_000);
    }

    #[test]
    fn chain_adds_on_top_of_throughput() {
        let mut e = engine();
        e.forward(0, 1, 24, 1000);
        e.chain(10, 2); // 10*6 + 2*20 = 100 cycles
        let m = fin(e);
        assert_eq!(m.cycles, 1000 + 100);
        assert_eq!(m.breakdown.chain, 100);
    }

    #[test]
    fn capacity_misses_reach_dram() {
        let mut e = engine();
        // 4 MiB resident on a 1 MiB bank: 75% of accesses miss.
        e.register_resident(0, 4 << 20);
        e.bank_read_lines(0, 1000);
        let m = fin(e);
        assert_eq!(m.dram_accesses, 750);
        assert!((m.l3_miss_rate - 0.75).abs() < 0.01);
    }

    #[test]
    fn fitting_working_set_has_no_misses() {
        let mut e = engine();
        e.register_resident_spread(32 << 20); // half the 64 MiB L3
        e.bank_read_lines(0, 1000);
        let m = fin(e);
        assert_eq!(m.dram_accesses, 0);
        assert_eq!(m.l3_miss_rate, 0.0);
    }

    #[test]
    fn contended_core_atomic_doubles_traffic() {
        let mut q = engine();
        q.core_atomic(0, 9, false, 100);
        let quiet = fin(q);
        let mut c = engine();
        c.core_atomic(0, 9, true, 100);
        let contended = fin(c);
        assert!(contended.total_hop_flits > quiet.total_hop_flits);
    }

    #[test]
    fn remote_atomic_counts_occupancy_phase() {
        let mut e = engine();
        e.begin_phase();
        e.remote_atomic(0, 9, 500);
        e.end_phase();
        let m = fin(e);
        assert_eq!(m.occupancy.len(), 1);
        assert!(m.occupancy.snapshots()[0].per_bank[9] > 0.0);
    }

    #[test]
    fn speedup_and_energy_ratios() {
        // The Fig 4 mechanism: every bank forwards to bank (b + delta).
        // delta = 32 piles overlapping flows onto the bisection (slow);
        // delta = 1 gives each flow a private link (fast).
        let mut slow = engine();
        for b in 0..64u32 {
            slow.forward(b, (b + 32) % 64, 24, 10_000);
        }
        let slow = fin(slow);
        let mut fast = engine();
        for b in 0..64u32 {
            fast.forward(b, (b + 1) % 64, 24, 10_000);
        }
        let fast = fin(fast);
        assert!(fast.speedup_over(&slow) > 1.0);
        assert!(fast.energy_eff_over(&slow) > 1.0);
        assert!(fast.traffic_vs(&slow) < 1.0);
    }

    #[test]
    fn credits_are_batched() {
        let mut e = engine();
        e.credits(0, 5, 640);
        let m = fin(e);
        // 640 iterations / 64 per credit = 10 messages * 5 hops * 1 flit.
        assert_eq!(m.hop_flits_of(TrafficClass::Control), 50);
    }

    #[test]
    fn offload_config_charges_offload_class() {
        let mut e = engine();
        e.offload_config(0, 9, 3);
        let m = fin(e);
        assert!(m.hop_flits_of(TrafficClass::Offload) > 0);
        assert_eq!(m.hop_flits_of(TrafficClass::Data), 0);
    }

    // ---------- fault model ----------

    use aff_sim_core::fault::FaultPlan;

    fn faulty_engine(plan: FaultPlan) -> SimEngine {
        SimEngine::new(MachineConfig::paper_default().with_faults(plan))
    }

    fn busy_run(e: &mut SimEngine) {
        e.core_read_lines(0, 9, 100);
        e.offload_config(0, 9, 2);
        e.remote_atomic(3, 9, 50);
        e.forward(4, 9, 24, 200);
        e.migrate(4, 9, 1);
        e.register_resident(9, 1 << 18);
        e.bank_read_lines(9, 300);
        e.bank_write_lines(9, 100);
    }

    #[test]
    fn mid_run_bank_death_migrates_residency_and_drains_offloads() {
        use aff_sim_core::fault::FaultChange;
        let timeline = FaultTimeline::none().at(1, FaultChange::BankFail(9));
        let cfg = MachineConfig::paper_default().with_fault_timeline(timeline.clone());
        let mut e = SimEngine::new(cfg);
        // Phase 1: bank 9 is alive — residency and offload work land on it.
        e.begin_phase();
        e.register_resident(9, 1 << 18);
        e.se_ops(9, 500);
        e.bank_read_lines(9, 300);
        e.end_phase(); // progress ≥ 1 cycle → the death epoch fires here
        assert_eq!(e.fault_transitions(), timeline.events());
        assert!(e.active_faults().failed_banks.contains(&9));
        // Phase 2: work homed at 9 is served by its spare.
        e.begin_phase();
        e.register_resident(9, 1 << 10);
        e.se_ops(9, 40); // In-Core fallback now
        e.end_phase();
        assert_eq!(e.banks().resident_of(9), 0, "dead bank holds nothing");
        assert_eq!(
            e.banks().total_resident(),
            (1 << 18) + (1 << 10),
            "evacuated + redirected bytes all survived the move"
        );
        let m = fin(e);
        assert_eq!(m.degradation.fault_epochs, 1);
        assert_eq!(
            m.degradation.evacuated_lines,
            (1 << 18) / aff_sim_core::config::CACHE_LINE,
            "every resident line crossed the NoC once"
        );
        assert_eq!(m.transitions, timeline.events());
        assert_eq!(
            m.breakdown.se_compute, 0,
            "queued offload work drained to the In-Core fallback at the death epoch"
        );
        assert!(
            m.breakdown.core_compute > 0,
            "the drained 500 SE ops (plus the post-death 40) retired on the cores"
        );
        // The migration flits are real Data-class traffic.
        assert!(m.hop_flits_of(TrafficClass::Data) > 0);
    }

    #[test]
    fn cycle_zero_death_matches_the_static_fault_plan() {
        use aff_sim_core::fault::{FaultChange, FaultPlan};
        let cfg_static = MachineConfig::paper_default()
            .with_faults(FaultPlan::none().fail_bank(9));
        let cfg_timeline = MachineConfig::paper_default()
            .with_fault_timeline(FaultTimeline::none().at(0, FaultChange::BankFail(9)));
        let run = |cfg: MachineConfig| {
            let mut e = SimEngine::new(cfg);
            busy_run(&mut e);
            fin(e)
        };
        let (a, b) = (run(cfg_static), run(cfg_timeline));
        // A bank dead "at birth" is indistinguishable from one that never
        // existed — nothing was resident yet, so nothing migrates.
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.breakdown, b.breakdown);
        assert_eq!(a.total_hop_flits, b.total_hop_flits);
        assert_eq!(b.degradation.evacuated_lines, 0);
        assert_eq!(b.degradation.fault_epochs, 1);
        assert_eq!(b.degradation.remapped_banks, a.degradation.remapped_banks);
    }

    #[test]
    fn events_scheduled_past_the_run_end_never_fire() {
        use aff_sim_core::fault::FaultChange;
        let cfg = MachineConfig::paper_default().with_fault_timeline(
            FaultTimeline::none().at(u64::MAX, FaultChange::BankFail(9)),
        );
        let mut e = SimEngine::new(cfg);
        busy_run(&mut e);
        let m = fin(e);
        assert!(m.transitions.is_empty(), "the machine outlived the event");
        assert_eq!(m.degradation.fault_epochs, 0);
    }

    #[test]
    fn empty_timeline_is_byte_identical_to_no_timeline() {
        let mut a = engine();
        busy_run(&mut a);
        let cfg =
            MachineConfig::paper_default().with_fault_timeline(FaultTimeline::none());
        let mut b = SimEngine::new(cfg);
        busy_run(&mut b);
        let (ma, mb) = (fin(a), fin(b));
        // Metrics carries floats and nested reports; the derived Debug repr
        // covers every field, so equal strings mean byte-identical metrics.
        assert_eq!(format!("{ma:?}"), format!("{mb:?}"));
    }

    #[test]
    fn fault_free_run_reports_zero_degradation() {
        let mut e = engine();
        busy_run(&mut e);
        let m = fin(e);
        assert!(m.degradation.is_zero());
    }

    #[test]
    fn empty_plan_is_byte_identical_to_fault_free() {
        let mut healthy = engine();
        busy_run(&mut healthy);
        let mut faulted = faulty_engine(FaultPlan::none());
        busy_run(&mut faulted);
        let (a, b) = (fin(healthy), fin(faulted));
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.total_hop_flits, b.total_hop_flits);
        assert_eq!(a.degradation, b.degradation);
    }

    #[test]
    fn dead_bank_remaps_to_spare() {
        // Bank 9 = (1,1) on 8x8; nearest healthy tie breaks to bank 1.
        let mut e = faulty_engine(FaultPlan::none().fail_bank(9));
        e.register_resident(9, 1 << 20);
        e.bank_read_lines(9, 1000);
        e.core_read_lines(0, 9, 10);
        assert_eq!(e.banks().accesses_of(9), 0, "dead bank serves nothing");
        assert_eq!(e.banks().accesses_of(1), 1010);
        assert_eq!(e.banks().resident_of(1), 1 << 20);
        let m = fin(e);
        assert_eq!(m.degradation.remapped_banks, 1);
        assert_eq!(m.degradation.remapped_bytes, 1 << 20);
        assert_eq!(
            m.degradation.masked_capacity_bytes,
            MachineConfig::paper_default().l3_bank_bytes
        );
        // The bank_read at the dead bank now pays a NoC round trip to the
        // spare, so traffic is non-zero where a healthy run has none.
        assert!(m.total_hop_flits > 0);
    }

    #[test]
    fn dead_bank_falls_back_to_in_core() {
        let mut e = faulty_engine(FaultPlan::none().fail_bank(9));
        e.se_ops(9, 5_000);
        e.offload_config(0, 9, 3);
        let m = fin(e);
        assert_eq!(m.breakdown.se_compute, 0, "dead SEL3 runs nothing");
        assert!(m.breakdown.core_compute > 0, "tile core absorbs the work");
        assert_eq!(m.degradation.incore_fallback_streams, 3);
    }

    #[test]
    fn slowed_bank_stretches_bank_service() {
        let mut healthy = engine();
        healthy.bank_read_lines(3, 1000);
        let h = fin(healthy);
        let mut slowed = faulty_engine(FaultPlan::none().slow_bank(3, 4));
        slowed.bank_read_lines(3, 1000);
        let s = fin(slowed);
        assert_eq!(s.breakdown.bank_service, 4 * h.breakdown.bank_service);
        assert!(s.cycles >= h.cycles);
    }

    #[test]
    fn migration_to_dead_bank_is_rerouted() {
        let mut e = faulty_engine(FaultPlan::none().fail_bank(9));
        e.migrate(4, 9, 7);
        let m = fin(e);
        assert_eq!(m.degradation.rerouted_migrations, 7);
    }

    #[test]
    fn dead_link_shows_up_in_routing_degradation() {
        // Kill the eastbound link 0->1; traffic 0->1 must detour.
        use aff_sim_core::fault::LinkRef;
        let plan =
            FaultPlan::none().fail_link(LinkRef::between(0, 0, 1, 0).unwrap());
        let mut e = faulty_engine(plan);
        e.forward(0, 1, 24, 10);
        let m = fin(e);
        assert_eq!(m.degradation.rerouted_messages, 10);
        assert_eq!(m.degradation.detour_hops, 20);
    }
}

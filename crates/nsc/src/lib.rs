//! Near-stream computing (NSC) — the paper's baseline near-data-computing
//! substrate (§2, from Wang et al., HPCA '22).
//!
//! NSC decomposes kernels into *streams* — long-term access patterns (affine
//! `A[i]`, indirect `A[B[i]]`, pointer-chasing `p = p->next`, atomics) — that
//! either run at the core (`In-Core`) or are offloaded to stream engines at
//! the L3 banks (`Near-L3`), migrating bank-to-bank along the data layout.
//!
//! The crate provides:
//!
//! * [`stream`] — stream and stream-dependence-graph descriptors (Fig 2),
//! * [`engine::SimEngine`] — the accounting/timing engine every workload
//!   executes against: it attributes each simulated message to a traffic
//!   class, charges bank/link/DRAM/compute time, and finally produces
//!   [`engine::Metrics`],
//! * [`occupancy`] — per-bank atomic-stream occupancy timelines (Fig 14),
//! * [`interp`] — a functional interpreter executing stream graphs over
//!   simulated memory (the semantics the executors charge costs for).
//!
//! # Execution modes
//!
//! [`ExecMode`] selects where computation runs. Data *layout* is orthogonal:
//! the same `NearL3` executor runs over naïve or affinity-allocated layouts —
//! that separation is exactly the paper's point.

pub mod engine;
pub mod interp;
pub mod occupancy;
pub mod stream;

pub use engine::{CycleBreakdown, Metrics, SimEngine};
pub use occupancy::OccupancyTimeline;
pub use stream::{StreamGraph, StreamKind};

/// Where computation executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Conventional execution: all computation at the cores, all data over
    /// the NoC to private caches (the paper's `In-Core` baseline).
    InCore,
    /// Near-stream computing: streams offloaded to the L3 stream engines
    /// (the paper's `Near-L3` baseline, and — combined with affinity-
    /// allocated layouts — its `Aff-Alloc` configuration).
    NearL3,
}

impl ExecMode {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::InCore => "In-Core",
            ExecMode::NearL3 => "Near-L3",
        }
    }
}

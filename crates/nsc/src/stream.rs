//! Stream and stream-dependence-graph descriptors (Fig 2 of the paper).
//!
//! The NSC compiler turns loops into *stream dependence graphs*: nodes are
//! streams (one per long-term access pattern plus attached computation),
//! edges are element-wise dependences. We build the same graphs by hand via
//! [`StreamGraph::builder`] — the reproduction's stand-in for the LLVM
//! stream compiler — and the executors charge configuration and credit
//! traffic from the graph's shape.

use serde::{Deserialize, Serialize};

/// The long-term access pattern of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamKind {
    /// Affine load: `A[p/q · i + x]`.
    AffineLoad,
    /// Affine store (carries the attached computation in Fig 2(a)).
    AffineStore,
    /// Indirect access `A[B[i]]`.
    Indirect,
    /// Pointer-chasing `p = p->next`.
    PointerChase,
    /// Remote atomic (CAS / fetch-add) — Fig 2(c)'s `sx`, `st`.
    Atomic,
    /// Reduction into a scalar (pull-style graph kernels).
    Reduce,
}

/// How one stream depends on another (edge labels of Fig 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// Consumer needs the producer's value (e.g. `sc` needs `sa`, `sb`).
    Value,
    /// Consumer's address comes from the producer (indirect base).
    Address,
    /// Consumer executes only if the producer's predicate is true
    /// (Fig 2(c): `st`,`sq` predicated on the CAS stream `sx`).
    Predicate,
}

/// One stream declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamDecl {
    /// Short name used in reports (`"sa"`, `"sv"`, …).
    pub name: String,
    /// Access pattern class.
    pub kind: StreamKind,
    /// Bytes accessed per element.
    pub elem_bytes: u64,
    /// Whether the stream carries near-stream computation (outlined ops run
    /// on SE ALUs or spare SMT threads).
    pub has_compute: bool,
}

/// One dependence edge, by stream indices into the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepEdge {
    /// Producer stream index.
    pub from: usize,
    /// Consumer stream index.
    pub to: usize,
    /// Dependence class.
    pub kind: DepKind,
}

/// A stream dependence graph — what the NSC compiler emits per loop nest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamGraph {
    name: String,
    streams: Vec<StreamDecl>,
    deps: Vec<DepEdge>,
}

impl StreamGraph {
    /// Start building a graph for the loop `name`.
    pub fn builder(name: impl Into<String>) -> StreamGraphBuilder {
        StreamGraphBuilder {
            graph: StreamGraph {
                name: name.into(),
                streams: Vec::new(),
                deps: Vec::new(),
            },
        }
    }

    /// Loop name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared streams.
    pub fn streams(&self) -> &[StreamDecl] {
        &self.streams
    }

    /// Dependence edges.
    pub fn deps(&self) -> &[DepEdge] {
        &self.deps
    }

    /// Number of streams — each costs one configuration message per
    /// offloading core (§2.2: SEcore sends a configure packet to SEL3).
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Streams that carry near-stream computation.
    pub fn compute_streams(&self) -> usize {
        self.streams.iter().filter(|s| s.has_compute).count()
    }

    /// Producers of `consumer` (by index) with the given dependence kind.
    pub fn producers_of(&self, consumer: usize, kind: DepKind) -> Vec<usize> {
        self.deps
            .iter()
            .filter(|d| d.to == consumer && d.kind == kind)
            .map(|d| d.from)
            .collect()
    }

    /// The canonical vector-add graph of Fig 2(a): `sa`, `sb` forwarding
    /// values into the computing store `sc`.
    pub fn vec_add() -> Self {
        let mut b = Self::builder("vec_add");
        let sa = b.stream("sa", StreamKind::AffineLoad, 4, false);
        let sb = b.stream("sb", StreamKind::AffineLoad, 4, false);
        let sc = b.stream("sc", StreamKind::AffineStore, 4, true);
        b.dep(sa, sc, DepKind::Value);
        b.dep(sb, sc, DepKind::Value);
        b.build()
    }

    /// The push-BFS graph of Fig 2(c): queue scan, CSR index, parent load,
    /// edge stream, CAS on `P[v]`, predicated tail-increment and queue store.
    pub fn push_bfs() -> Self {
        let mut b = Self::builder("push_bfs");
        let su = b.stream("su", StreamKind::AffineLoad, 4, false);
        let se = b.stream("se", StreamKind::AffineLoad, 8, false);
        let sp = b.stream("sp", StreamKind::AffineLoad, 4, false);
        let sv = b.stream("sv", StreamKind::AffineLoad, 4, false);
        let sx = b.stream("sx", StreamKind::Atomic, 8, true);
        let st = b.stream("st", StreamKind::Atomic, 8, false);
        let sq = b.stream("sq", StreamKind::Indirect, 4, false);
        b.dep(su, se, DepKind::Address);
        b.dep(se, sv, DepKind::Address);
        b.dep(sv, sx, DepKind::Address);
        b.dep(sp, sx, DepKind::Value);
        b.dep(sx, st, DepKind::Predicate);
        b.dep(sx, sq, DepKind::Predicate);
        b.dep(st, sq, DepKind::Address);
        b.build()
    }

    /// The list-search graph of Fig 2(b): a pointer-chasing stream with an
    /// attached comparison and dynamic break.
    pub fn list_search() -> Self {
        let mut b = Self::builder("list_search");
        b.stream("sp", StreamKind::PointerChase, 16, true);
        b.build()
    }
}

/// Builder for [`StreamGraph`].
#[derive(Debug)]
pub struct StreamGraphBuilder {
    graph: StreamGraph,
}

impl StreamGraphBuilder {
    /// Declare a stream; returns its index for wiring dependences.
    pub fn stream(
        &mut self,
        name: impl Into<String>,
        kind: StreamKind,
        elem_bytes: u64,
        has_compute: bool,
    ) -> usize {
        self.graph.streams.push(StreamDecl {
            name: name.into(),
            kind,
            elem_bytes,
            has_compute,
        });
        self.graph.streams.len() - 1
    }

    /// Add a dependence edge.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or the edge is a self-loop.
    pub fn dep(&mut self, from: usize, to: usize, kind: DepKind) -> &mut Self {
        let n = self.graph.streams.len();
        assert!(from < n && to < n, "dependence on undeclared stream");
        assert_ne!(from, to, "self-dependence");
        self.graph.deps.push(DepEdge { from, to, kind });
        self
    }

    /// Finish the graph.
    pub fn build(self) -> StreamGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_add_shape() {
        let g = StreamGraph::vec_add();
        assert_eq!(g.num_streams(), 3);
        assert_eq!(g.compute_streams(), 1);
        assert_eq!(g.producers_of(2, DepKind::Value), vec![0, 1]);
        assert_eq!(g.name(), "vec_add");
    }

    #[test]
    fn push_bfs_shape_matches_fig2c() {
        let g = StreamGraph::push_bfs();
        assert_eq!(g.num_streams(), 7);
        // st and sq are predicated on the CAS stream sx (index 4).
        let preds: Vec<_> = g
            .deps()
            .iter()
            .filter(|d| d.kind == DepKind::Predicate)
            .collect();
        assert_eq!(preds.len(), 2);
        assert!(preds.iter().all(|d| d.from == 4));
    }

    #[test]
    fn list_search_is_single_stream() {
        let g = StreamGraph::list_search();
        assert_eq!(g.num_streams(), 1);
        assert_eq!(g.streams()[0].kind, StreamKind::PointerChase);
        assert!(g.streams()[0].has_compute);
    }

    #[test]
    #[should_panic(expected = "undeclared stream")]
    fn dep_bounds_checked() {
        let mut b = StreamGraph::builder("bad");
        let s = b.stream("s", StreamKind::AffineLoad, 4, false);
        b.dep(s, 5, DepKind::Value);
    }

    #[test]
    #[should_panic(expected = "self-dependence")]
    fn self_loop_rejected() {
        let mut b = StreamGraph::builder("bad");
        let s = b.stream("s", StreamKind::AffineLoad, 4, false);
        b.dep(s, s, DepKind::Value);
    }
}

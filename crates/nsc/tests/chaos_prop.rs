//! Property tests for online fault arrival (robustness pins):
//!
//! * any sanitized fault timeline — including ones sampled far outside the
//!   machine's mesh — validates, never panics the engine, and terminates
//!   under a [`RunBudget`];
//! * chaos-sampled timelines (the `figures --chaos` generator) are valid by
//!   construction and keep the transition-log invariants;
//! * the **empty** timeline is byte-identical to the fault-free golden for
//!   arbitrary workloads, not just the fixed unit-test one.

use aff_nsc::engine::SimEngine;
use aff_sim_core::config::MachineConfig;
use aff_sim_core::error::{RunBudget, SimError};
use aff_sim_core::fault::{FaultChange, FaultPlan, FaultTimeline, LinkRef};
use aff_sim_core::rng::SimRng;
use proptest::prelude::*;

/// A deterministic mixed workload parameterized by `knob`: residency,
/// offloads, reads, atomics and migrations across several phases — enough
/// surface to cross any fault epoch a timeline can schedule.
fn drive(e: &mut SimEngine, knob: u64) {
    let banks = u64::from(e.config().num_banks());
    for phase in 0..4u64 {
        e.begin_phase();
        for i in 0..32u64 {
            let b = ((phase * 7 + i * (1 + knob % 5)) % banks) as u32;
            e.register_resident(b, 1 << 12);
            e.bank_read_lines(b, 20 + knob % 13);
            e.se_ops(b, 10);
            e.remote_atomic(((u64::from(b) + 1) % banks) as u32, b, 2);
            e.migrate(b, ((u64::from(b) + 3) % banks) as u32, 1);
        }
        e.core_ops(1000 + knob % 997);
        e.end_phase();
    }
}

/// Decode one raw draw into a fault change. Deliberately unconstrained:
/// bank ids past the 8x8 mesh, multipliers below the legal ≥ 2 floor,
/// out-of-mesh and degenerate self-links — everything a chaos timeline
/// sampled for a bigger reference machine could carry. `sanitized_for`
/// must cope with all of it.
fn raw_change(tag: u32, a: u32, b: u32, mult: u32) -> FaultChange {
    let link = {
        let (fx, fy) = (a % 10, b % 10);
        let (tx, ty) = match mult % 4 {
            0 => (fx + 1, fy),
            1 => (fx.saturating_sub(1), fy),
            2 => (fx, fy + 1),
            _ => (fx, fy.saturating_sub(1)),
        };
        LinkRef { fx, fy, tx, ty }
    };
    match tag {
        0 => FaultChange::BankFail(a),
        1 => FaultChange::BankRepair(a),
        2 => FaultChange::BankSlow {
            bank: a,
            multiplier: mult,
        },
        3 => FaultChange::LinkFail(link),
        4 => FaultChange::LinkRepair(link),
        _ => FaultChange::LinkDegrade {
            link,
            multiplier: mult,
        },
    }
}

proptest! {
    /// Sanitized timelines validate, never panic the engine, and a run
    /// under a finite budget always terminates with either metrics or a
    /// typed budget error — and when it finishes, the transition log
    /// matches what actually fired.
    #[test]
    fn sanitized_timelines_never_panic_and_terminate_under_budget(
        raw in proptest::collection::vec(
            (0u64..1 << 14, 0u32..6, 0u32..96, 0u32..96, 0u32..70),
            0..24,
        ),
        knob in 0u64..1 << 20,
    ) {
        let mut unsafe_tl = FaultTimeline::none();
        for &(cycle, tag, a, b, mult) in &raw {
            unsafe_tl = unsafe_tl.at(cycle, raw_change(tag, a, b, mult));
        }
        let base = MachineConfig::paper_default();
        let tl = unsafe_tl.sanitized_for(&base, &FaultPlan::none());
        prop_assert!(tl.validate(&base, &FaultPlan::none()).is_ok());
        let cfg = base
            .with_fault_timeline(tl.clone())
            .with_budget(RunBudget::unlimited().with_max_cycles(1 << 32));
        let mut e = SimEngine::new(cfg);
        drive(&mut e, knob);
        match e.try_finish() {
            Ok(m) => {
                prop_assert_eq!(
                    m.degradation.fault_epochs,
                    m.transitions.len() as u64
                );
                // Every fired transition is one of the scheduled events, in
                // schedule order (late events legitimately never fire).
                let mut remaining = tl.events().iter();
                for t in &m.transitions {
                    prop_assert!(remaining.any(|s| s == t));
                }
            }
            Err(SimError::BudgetExhausted { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// The `--chaos` generator only produces timelines the reference
    /// machine accepts verbatim, and runs under them complete clean.
    #[test]
    fn chaos_timelines_validate_and_run_clean(
        seed in 0u64..=u64::MAX,
        intensity in 1u32..12,
    ) {
        let cfg = MachineConfig::paper_default();
        let mut rng = SimRng::split(seed, 1);
        let tl = FaultTimeline::chaos(&mut rng, &cfg, intensity);
        prop_assert!(tl.validate(&cfg, &FaultPlan::none()).is_ok());
        let mut e = SimEngine::new(cfg.with_fault_timeline(tl));
        drive(&mut e, seed % 1024);
        let m = e.try_finish().expect("unlimited budget");
        prop_assert_eq!(m.degradation.fault_epochs, m.transitions.len() as u64);
        prop_assert!(m.cycles >= 1);
    }

    /// The sanitized-timeline robustness pin, replayed across the geometry
    /// matrix: a 16×16 mesh (256 banks, the on-demand route store), a
    /// non-square 8×4 mesh, and an 8×8 torus. Sanitized timelines must
    /// validate, never panic the engine, and terminate under budget on
    /// every geometry — the raw draws deliberately include coordinates and
    /// links that only exist on *some* of them.
    #[test]
    fn sanitized_timelines_hold_across_geometries(
        geometry in 0usize..3,
        raw in proptest::collection::vec(
            (0u64..1 << 14, 0u32..6, 0u32..300, 0u32..300, 0u32..70),
            0..16,
        ),
        knob in 0u64..1 << 20,
    ) {
        use aff_sim_core::config::TopologyKind;
        let base = match geometry {
            0 => MachineConfig::builder().mesh(16, 16).build(),
            1 => MachineConfig::builder().mesh(8, 4).build(),
            _ => MachineConfig::builder().topology(TopologyKind::Torus).build(),
        };
        let mut unsafe_tl = FaultTimeline::none();
        for &(cycle, tag, a, b, mult) in &raw {
            unsafe_tl = unsafe_tl.at(cycle, raw_change(tag, a, b, mult));
        }
        let tl = unsafe_tl.sanitized_for(&base, &FaultPlan::none());
        prop_assert!(tl.validate(&base, &FaultPlan::none()).is_ok());
        let cfg = base
            .with_fault_timeline(tl)
            .with_budget(RunBudget::unlimited().with_max_cycles(1 << 32));
        let mut e = SimEngine::new(cfg);
        drive(&mut e, knob);
        match e.try_finish() {
            Ok(m) => prop_assert_eq!(
                m.degradation.fault_epochs,
                m.transitions.len() as u64
            ),
            Err(SimError::BudgetExhausted { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// An empty timeline is not "a fault run with zero faults" — it is the
    /// golden fault-free run, bit for bit, whatever the workload.
    #[test]
    fn empty_timeline_is_bitwise_golden_for_arbitrary_workloads(
        knob in 0u64..1 << 20,
    ) {
        let mut golden = SimEngine::new(MachineConfig::paper_default());
        drive(&mut golden, knob);
        let cfg = MachineConfig::paper_default().with_fault_timeline(FaultTimeline::none());
        let mut empty = SimEngine::new(cfg);
        drive(&mut empty, knob);
        let (a, b) = (
            golden.try_finish().expect("unlimited budget"),
            empty.try_finish().expect("unlimited budget"),
        );
        // Metrics has no PartialEq; the derived Debug repr covers every
        // field (floats included), so equal strings mean identical metrics.
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

//! **Affinity alloc** — the paper's core contribution (MICRO '23).
//!
//! A memory allocator that accepts *affinity information* instead of
//! imperative placement directives, and lowers it onto interleave pools so
//! that near-data computation lands where its operands are:
//!
//! * **Affine** (§4.2): [`AffineArrayReq`] carries `align_to` +
//!   `align_p/q/x` — "element `i` of this array aligns with element
//!   `(p/q)·i + x` of that array" (Eq 2). The runtime derives the interleave
//!   (Eq 3) and start bank, so corresponding elements of co-operating arrays
//!   share an L3 bank.
//! * **Irregular** (§5): [`AffinityAllocator::malloc_aff`] takes a list of
//!   *affinity addresses* the new object should be near. The runtime scores
//!   every bank by Eq 4 — `avg_hops + H · (load/avg_load − 1)` — and
//!   allocates from that bank's free list, trading affinity against load
//!   balance ([`BankSelectPolicy`]).
//!
//! # Example: the Fig 7 tree
//!
//! ```
//! use affinity_alloc::{AffinityAllocator, BankSelectPolicy};
//! use aff_sim_core::config::MachineConfig;
//!
//! let mut alloc = AffinityAllocator::new(
//!     MachineConfig::tiny_mesh(),
//!     BankSelectPolicy::Hybrid { h: 5.0 },
//! );
//! let n5 = alloc.malloc_aff(64, &[]).unwrap();
//! let n2 = alloc.malloc_aff(64, &[n5]).unwrap(); // near its parent
//! assert_eq!(alloc.bank_of(n2), alloc.bank_of(n5));
//! ```

pub mod api;
pub mod infer;
pub mod lanes;
pub mod policy;
pub mod runtime;
pub mod service;

pub use api::{AffineArrayReq, AffinityHint, AllocError, QuotaKind, MAX_AFFINITY_ADDRS};
pub use infer::{AffinityProfile, InferredHint, RegionHint};
pub use policy::BankSelectPolicy;
pub use runtime::{AffinityAllocator, AllocStats, FragmentationReport, MAX_ALLOC_BYTES};
pub use service::{AllocService, ServiceConfig, TenantStats};

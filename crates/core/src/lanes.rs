//! Branch-free chunked ("lane") kernels for the Eq-4 hot path.
//!
//! The bank-select argmin of [`runtime`](crate::runtime) evaluates Eq 4 over
//! every healthy bank for every irregular allocation — up to 1024 candidates
//! per call on the large geometries. The scalar formulation (an iterator
//! `min_by` over lazily computed scores) defeats the autovectorizer twice:
//! the comparator is an opaque closure, and the Manhattan distances are
//! recomputed from router coordinates per candidate per affinity address.
//!
//! These kernels restate the same math as straight-line loops over dense
//! slices in eight independent lanes, which LLVM lowers to SIMD
//! compare/blend sequences on every target we build for — no nightly
//! `std::simd`, no feature flag, and a scalar tail for lengths that are not
//! a multiple of the lane width.
//!
//! **Determinism contract**: every kernel here is bit-identical to its
//! scalar counterpart in `policy.rs` for *all* inputs, including NaN scores
//! and tie cases — the lane order only reassociates exact integer sums and
//! total-order comparisons, never floating-point additions. The proptests in
//! `policy.rs` and `tests/properties.rs` pin this.

use crate::policy::LOAD_SMOOTHING;

/// Lane width of the chunked kernels. Eight 64-bit lanes fill one AVX-512
/// register or two NEON/AVX2 registers; the compiler picks the widest
/// profitable lowering per target.
pub const LANES: usize = 8;

/// Map an `f64` to a `u64` key whose unsigned order equals
/// [`f64::total_cmp`]'s total order: `total_order_key(a) < total_order_key(b)`
/// iff `a.total_cmp(&b) == Ordering::Less`. This is the standard sign-magnitude
/// flip — negative NaNs map lowest, positive NaNs highest.
#[inline]
#[must_use]
pub fn total_order_key(s: f64) -> u64 {
    let k = s.to_bits() as i64;
    let k = k ^ ((((k >> 63) as u64) >> 1) as i64);
    (k as u64) ^ (1 << 63)
}

/// Argmin over parallel `(id, score)` slices under [`f64::total_cmp`]
/// ordering with ties broken toward the lowest id — the lane-parallel
/// equivalent of [`argmin_score`](crate::policy::argmin_score).
///
/// Eight lanes each hold a running `(key, id)` minimum over the indices
/// congruent to their lane; a horizontal reduce and a scalar tail finish the
/// job. The per-lane update is a branch-free compare/select, so the chunk
/// loop is a straight line.
///
/// Returns `None` only for empty input. Bit-identical to the scalar argmin
/// for every input, including NaNs (a NaN score keys above all reals and
/// loses) and exact ties (lowest id wins).
///
/// `inline(never)`: each binary compiles this once as a standalone loop nest
/// the vectorizer always fires on. Inlined into a large caller, thin-LTO's
/// cost model has been observed to scalarize it in some binaries (the
/// `figures` bin ran the Eq-4 sweep ~2.5× slower than a small test driver
/// built from the same source) — pinning the outlined form makes the codegen
/// identical everywhere.
#[inline(never)]
#[must_use]
pub fn argmin_score_lanes(ids: &[u32], scores: &[f64]) -> Option<u32> {
    // invariant: callers pass parallel slices; truncating to the shorter
    // keeps the kernel total instead of panicking on a harness bug.
    let n = ids.len().min(scores.len());
    if n == 0 {
        return None;
    }
    let mut best_key = [u64::MAX; LANES];
    let mut best_id = [u32::MAX; LANES];
    let chunks = n / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        for l in 0..LANES {
            let key = total_order_key(scores[base + l]);
            let id = ids[base + l];
            let better = key < best_key[l] || (key == best_key[l] && id < best_id[l]);
            best_key[l] = if better { key } else { best_key[l] };
            best_id[l] = if better { id } else { best_id[l] };
        }
    }
    let mut k = u64::MAX;
    let mut i = u32::MAX;
    for l in 0..LANES {
        if best_key[l] < k || (best_key[l] == k && best_id[l] < i) {
            k = best_key[l];
            i = best_id[l];
        }
    }
    for t in chunks * LANES..n {
        let key = total_order_key(scores[t]);
        if key < k || (key == k && ids[t] < i) {
            k = key;
            i = ids[t];
        }
    }
    // The `(u64::MAX, u32::MAX)` sentinel can only survive a non-empty scan
    // if the true minimum *is* that exact pair (a maximal-payload +NaN at id
    // u32::MAX) — in which case `i` is the right answer anyway.
    Some(i)
}

/// Accumulate a `u16` distance column into `u32` hop sums:
/// `acc[i] += col[i]`. Exact integer adds, so lane order cannot change the
/// result; the loop body is a widening add the autovectorizer unrolls.
///
/// Sum of a `u64` slice, eight partial accumulators wide — the per-call
/// total-load reduction of `select_bank`. Integer addition is associative,
/// so any lane order gives the scalar `iter().sum()` answer. `inline(never)`
/// for the same per-binary codegen pinning as [`argmin_score_lanes`].
#[inline(never)]
#[must_use]
pub fn sum_u64(xs: &[u64]) -> u64 {
    let mut acc = [0u64; LANES];
    let chunks = xs.len() / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        for l in 0..LANES {
            acc[l] += xs[base + l];
        }
    }
    let mut total: u64 = acc.iter().sum();
    for &x in &xs[chunks * LANES..] {
        total += x;
    }
    total
}

/// Truncates to the shorter slice (callers pass equal lengths).
/// `inline(never)` for the same per-binary codegen pinning as
/// [`argmin_score_lanes`].
#[inline(never)]
pub fn add_u16_column(acc: &mut [u32], col: &[u16]) {
    let n = acc.len().min(col.len());
    let (acc, col) = (&mut acc[..n], &col[..n]);
    for i in 0..n {
        acc[i] += u32::from(col[i]);
    }
}

/// Eq-4 scores for a batch of candidates: `out[i] = score(hops[i], loads[i],
/// avg_load, h)` with exactly the operations (and rounding) of the scalar
/// [`score`](crate::policy::score) — the batch form just gives the compiler a dense loop to
/// vectorize the divide/FMA sequence over.
///
/// Truncates to the shortest slice (callers pass equal lengths).
/// `inline(never)` for the same per-binary codegen pinning as
/// [`argmin_score_lanes`].
#[inline(never)]
pub fn score_lanes(avg_hops: &[f64], loads: &[u64], avg_load: f64, h: f64, out: &mut [f64]) {
    let n = avg_hops.len().min(loads.len()).min(out.len());
    let denom = avg_load + LOAD_SMOOTHING;
    for i in 0..n {
        let ratio = (loads[i] as f64 + LOAD_SMOOTHING) / denom;
        out[i] = avg_hops[i] + h * (ratio - 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{argmin_score, score};

    #[test]
    fn total_order_key_matches_total_cmp() {
        let vals = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1.0e-300,
            1.5,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
            f64::from_bits(0x7FFF_FFFF_FFFF_FFFF), // max-payload +NaN
            f64::from_bits(0xFFFF_FFFF_FFFF_FFFF), // min-keyed -NaN
        ];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    total_order_key(a).cmp(&total_order_key(b)),
                    a.total_cmp(&b),
                    "key order diverged for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn lane_argmin_matches_scalar_on_ties_and_nans() {
        let cases: Vec<Vec<(u32, f64)>> = vec![
            vec![],
            vec![(7, 1.0)],
            vec![(3, 1.0), (1, 1.0), (2, 5.0)],
            vec![(0, f64::NAN), (1, 2.0), (2, f64::NAN)],
            vec![(5, f64::NAN), (9, f64::NAN)],
            (0..37).map(|i| (i, f64::from(i % 5))).collect(),
            (0..64).map(|i| (63 - i, 0.25)).collect(),
            vec![(u32::MAX, f64::from_bits(0x7FFF_FFFF_FFFF_FFFF))],
        ];
        for case in cases {
            let ids: Vec<u32> = case.iter().map(|&(i, _)| i).collect();
            let scores: Vec<f64> = case.iter().map(|&(_, s)| s).collect();
            assert_eq!(
                argmin_score_lanes(&ids, &scores),
                argmin_score(case.iter().copied()),
                "diverged on {case:?}"
            );
        }
    }

    #[test]
    fn score_lanes_is_bitwise_scalar_score() {
        let hops = [0.0, 1.5, 3.0, 7.25, 0.5, 62.0, 11.0, 2.0, 9.0];
        let loads = [0u64, 1, 8, 30, 1000, 2, 5, 7, 123_456];
        let mut out = [0.0; 9];
        score_lanes(&hops, &loads, 3.7, 5.0, &mut out);
        for i in 0..9 {
            assert_eq!(
                out[i].to_bits(),
                score(hops[i], loads[i], 3.7, 5.0).to_bits(),
                "lane {i} rounded differently"
            );
        }
    }

    #[test]
    fn column_adds_are_exact() {
        let mut acc = vec![1u32; 19];
        let col: Vec<u16> = (0..19).map(|i| i * 3).collect();
        add_u16_column(&mut acc, &col);
        for (i, &a) in acc.iter().enumerate() {
            assert_eq!(a, 1 + (i as u32) * 3);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::policy::{argmin_score, score};
    use proptest::prelude::*;

    proptest! {
        /// The full lane pipeline — `score_lanes` into a buffer then
        /// `argmin_score_lanes` — picks the same bank as the scalar
        /// `argmin_score` over lazily computed `score()`s (the pre-lanes
        /// `select_bank` shape), for arbitrary candidate sets including
        /// forced score ties.
        #[test]
        fn lane_pipeline_matches_scalar_select(
            mut cands in proptest::collection::vec(
                (0u32..4096, 0.0f64..64.0, 0u64..10_000), 0..300),
            avg_load in 0.0f64..5000.0,
            h in 0.0f64..16.0,
            tie in 0usize..300,
        ) {
            // Force a tie: duplicate one candidate's (hops, load) under a
            // different id so the lowest-id tie-break is exercised.
            if !cands.is_empty() {
                let (id, hops, load) = cands[tie % cands.len()];
                cands.push((id ^ 1, hops, load));
            }
            let ids: Vec<u32> = cands.iter().map(|c| c.0).collect();
            let hops: Vec<f64> = cands.iter().map(|c| c.1).collect();
            let loads: Vec<u64> = cands.iter().map(|c| c.2).collect();

            let mut buf = vec![0.0; cands.len()];
            score_lanes(&hops, &loads, avg_load, h, &mut buf);
            let lane_pick = argmin_score_lanes(&ids, &buf);

            let scalar_pick = argmin_score(
                ids.iter()
                    .zip(&hops)
                    .zip(&loads)
                    .map(|((&i, &ah), &l)| (i, score(ah, l, avg_load, h))),
            );
            prop_assert_eq!(lane_pick, scalar_pick);
            // And the buffer itself is bitwise the scalar scores.
            for i in 0..cands.len() {
                prop_assert_eq!(
                    buf[i].to_bits(),
                    score(hops[i], loads[i], avg_load, h).to_bits()
                );
            }
        }

        /// `total_order_key` preserves `f64::total_cmp` order on arbitrary
        /// bit patterns (every NaN payload included).
        #[test]
        fn order_key_is_total_cmp(a in any::<u64>(), b in any::<u64>()) {
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            prop_assert_eq!(
                total_order_key(x).cmp(&total_order_key(y)),
                x.total_cmp(&y)
            );
        }

        /// The chunked u64 sum and u16 column add equal their scalar forms
        /// for every slice length.
        #[test]
        fn integer_lanes_are_exact(
            xs in proptest::collection::vec(0u64..1u64 << 50, 0..100),
            col in proptest::collection::vec(0u16..u16::MAX, 0..100),
        ) {
            prop_assert_eq!(sum_u64(&xs), xs.iter().sum::<u64>());
            let mut lanes_acc = vec![7u32; col.len()];
            let mut scalar_acc = lanes_acc.clone();
            add_u16_column(&mut lanes_acc, &col);
            for (a, &c) in scalar_acc.iter_mut().zip(&col) {
                *a += u32::from(c);
            }
            prop_assert_eq!(lanes_acc, scalar_acc);
        }
    }
}

//! Bank-select policies for irregular allocation (§5.2 of the paper).
//!
//! The evaluated policies of Fig 13:
//!
//! * `Rnd` — uniform random bank,
//! * `Lnr` — round robin,
//! * `MinHop` — minimize average hops to the affinity addresses (Eq 4 with
//!   `H = 0`),
//! * `Hybrid { h }` — the full Eq 4 score
//!   `avg_hops + H · (load / avg_load − 1)`; `Hybrid { h: 5.0 }` is the
//!   paper's default.

use serde::{Deserialize, Serialize};

/// The bank-select policy of the irregular allocation path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BankSelectPolicy {
    /// Uniform random bank (layout-oblivious baseline).
    Rnd,
    /// Round-robin over banks.
    Lnr,
    /// Pure affinity: minimize average hops (Eq 4, `H = 0`).
    MinHop,
    /// Eq 4 with load-balance weight `h` (paper default `h = 5`).
    Hybrid {
        /// The load-balance weight `H`.
        h: f64,
    },
}

impl BankSelectPolicy {
    /// The paper's default configuration (`Hybrid-5`).
    pub fn paper_default() -> Self {
        BankSelectPolicy::Hybrid { h: 5.0 }
    }

    /// Label used in figures (`Rnd`, `Lnr`, `Min-Hop`, `Hybrid-5`).
    pub fn label(&self) -> String {
        match self {
            BankSelectPolicy::Rnd => "Rnd".into(),
            BankSelectPolicy::Lnr => "Lnr".into(),
            BankSelectPolicy::MinHop => "Min-Hop".into(),
            BankSelectPolicy::Hybrid { h } => format!("Hybrid-{h:.0}"),
        }
    }

    /// Whether this policy consults affinity addresses at all.
    pub fn uses_affinity(&self) -> bool {
        matches!(self, BankSelectPolicy::MinHop | BankSelectPolicy::Hybrid { .. })
    }
}

/// Laplace smoothing constant for the Eq 4 load ratio. With only a handful
/// of allocations outstanding, the raw `load/avg_load` ratio is extreme and
/// would spill *every* allocation away from its affinity target — but the
/// paper's own worked example (Fig 7) colocates the first children with
/// their parent and only spills once a bank is measurably hot. Smoothing
/// both terms by a small constant reproduces that behaviour while leaving
/// the steady-state ratio untouched.
pub const LOAD_SMOOTHING: f64 = 8.0;

/// The Eq 4 score for one candidate bank. Lower is better.
///
/// `avg_hops` is the mean Manhattan distance from the candidate to the
/// affinity addresses; `load` the candidate's current irregular allocations;
/// `avg_load` the mean over banks. The load ratio is Laplace-smoothed by
/// [`LOAD_SMOOTHING`].
pub fn score(avg_hops: f64, load: u64, avg_load: f64, h: f64) -> f64 {
    let ratio = (load as f64 + LOAD_SMOOTHING) / (avg_load + LOAD_SMOOTHING);
    avg_hops + h * (ratio - 1.0)
}

/// Pick the argmin-score bank, breaking ties toward the lowest id
/// (deterministic replay). Total over all float inputs: a NaN score sorts
/// above every real score under IEEE total ordering, so a poisoned candidate
/// loses rather than panicking.
pub fn argmin_score<I>(scores: I) -> Option<u32>
where
    I: IntoIterator<Item = (u32, f64)>,
{
    scores
        .into_iter()
        .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
        .map(|(bank, _)| bank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_fig13() {
        assert_eq!(BankSelectPolicy::Rnd.label(), "Rnd");
        assert_eq!(BankSelectPolicy::Lnr.label(), "Lnr");
        assert_eq!(BankSelectPolicy::MinHop.label(), "Min-Hop");
        assert_eq!(BankSelectPolicy::Hybrid { h: 5.0 }.label(), "Hybrid-5");
    }

    #[test]
    fn eq4_balances_affinity_and_load() {
        // Bank A: 0 hops, heavily loaded; bank B: 2 hops, at average load.
        let a = score(0.0, 30, 10.0, 5.0); // 0 + 5*(3-1) = 10
        let b = score(2.0, 10, 10.0, 5.0); // 2 + 0 = 2
        assert!(b < a, "H=5 must spill away from the hot bank");
        // With H = 0 (Min-Hop), bank A wins regardless of load.
        assert!(score(0.0, 30, 10.0, 0.0) < score(2.0, 10, 10.0, 0.0));
    }

    #[test]
    fn below_average_load_is_rewarded() {
        let s = score(1.0, 0, 10.0, 5.0);
        assert!(s < 1.0, "idle banks get a negative load term");
    }

    #[test]
    fn smoothing_keeps_first_allocations_affine() {
        // One allocation outstanding on the target bank, 64 banks: affinity
        // (1 hop away) must still beat the load penalty.
        let target = score(0.0, 1, 1.0 / 64.0, 5.0);
        let neighbor = score(1.0, 0, 1.0 / 64.0, 5.0);
        assert!(target < neighbor, "early load noise must not force a spill");
    }

    #[test]
    fn slowdown_weighted_load_shifts_the_argmin() {
        // The runtime feeds Eq 4 `load × bank_slowdown` for degraded banks:
        // a 4×-slower bank at average load must score like a 4×-loaded one,
        // so the argmin moves to a healthy bank one hop away. This pins the
        // weighting a live fault epoch applies when it slows a bank.
        let avg = 10.0;
        let healthy_home = argmin_score([
            (0, score(0.0, 10, avg, 5.0)),
            (1, score(1.0, 10, avg, 5.0)),
        ]);
        assert_eq!(healthy_home, Some(0), "no fault: affinity wins");
        let slowed_home = argmin_score([
            (0, score(0.0, 10 * 4, avg, 5.0)), // home bank, slowed 4×
            (1, score(1.0, 10, avg, 5.0)),
        ]);
        assert_eq!(slowed_home, Some(1), "slowdown repels the argmin");
    }

    #[test]
    fn argmin_breaks_ties_deterministically() {
        let winner = argmin_score([(3, 1.0), (1, 1.0), (2, 5.0)]);
        assert_eq!(winner, Some(1));
        assert_eq!(argmin_score(std::iter::empty::<(u32, f64)>()), None);
    }

    #[test]
    fn affinity_usage_flags() {
        assert!(!BankSelectPolicy::Rnd.uses_affinity());
        assert!(!BankSelectPolicy::Lnr.uses_affinity());
        assert!(BankSelectPolicy::MinHop.uses_affinity());
        assert!(BankSelectPolicy::paper_default().uses_affinity());
    }
}

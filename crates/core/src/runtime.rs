//! The affinity-alloc runtime (§4.2 affine path, §5 irregular path).
//!
//! The runtime sits between the application (which only states affinity) and
//! the OS pools (which only know interleave sizes). It:
//!
//! * derives each affine array's interleave from Eq 3 and places it at the
//!   required start bank, falling back to the baseline allocator when the
//!   derived interleave is not realizable (exactly the paper's fallback);
//! * scores banks by Eq 4 for irregular allocations and carves
//!   interleave-granularity chunks from per-`(interleave, bank)` free lists;
//! * tracks per-bank load and residency so the simulator's capacity model
//!   and the figure harness can read them back.
//!
//! Per the paper, irregular objects carry **no per-object metadata**: their
//! interleave is implied by the owning pool and their bank by Eq 1. (The
//! runtime keeps a debug-only liveness set to catch double frees in tests —
//! bookkeeping the modeled hardware does not need.)

use crate::api::{AffineArrayReq, AffinityHint, AllocError, MAX_AFFINITY_ADDRS};
use crate::lanes::{add_u16_column, argmin_score_lanes, score_lanes};
use crate::policy::BankSelectPolicy;
use aff_mem::addr::VAddr;
use aff_mem::memory::SimMemory;
use aff_mem::pool::PoolId;
use aff_mem::space::AddressSpace;
use aff_noc::topology::Topology;
use aff_sim_core::config::{MachineConfig, CACHE_LINE};
use aff_sim_core::fault::{DegradationReport, FaultPlan};
use aff_sim_core::rng::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Metadata the runtime keeps per affine array (used for Eq 3 derivation of
/// later arrays and for `free_aff`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AffineMeta {
    pool: PoolId,
    intrlv: u64,
    elem_size: u64,
    num_elem: u64,
    start_bank: u32,
    offset: u64,
    bytes: u64,
    /// Whether the placement realizes the request exactly. `false` for
    /// coarsened placements: the array is still pooled at the intended start
    /// bank, but per-element colocation with an `align_to` partner is lost.
    exact: bool,
}

/// Fragmentation snapshot (§8): free-list space versus live allocations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentationReport {
    /// Bytes in live allocations.
    pub live_bytes: u64,
    /// Bytes sitting on irregular free lists.
    pub free_bytes: u64,
    /// Bytes sitting on affine free lists.
    pub affine_free_bytes: u64,
    /// Irregular free bytes broken down by interleave size.
    pub free_bytes_per_interleave: Vec<(u64, u64)>,
}

impl FragmentationReport {
    /// Fraction of claimed pool space that is free-listed (0 = none).
    pub fn fragmentation_ratio(&self) -> f64 {
        let total = self.live_bytes + self.free_bytes + self.affine_free_bytes;
        if total == 0 {
            0.0
        } else {
            (self.free_bytes + self.affine_free_bytes) as f64 / total as f64
        }
    }
}

/// Allocation statistics (reported in EXPERIMENTS.md tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocStats {
    /// Affine arrays placed via interleave pools.
    pub affine: u64,
    /// Affine requests that fell back to the baseline heap.
    pub fallback: u64,
    /// Irregular allocations.
    pub irregular: u64,
    /// Frees of either kind.
    pub freed: u64,
    /// Irregular allocations served from a free list (reuse).
    pub freelist_hits: u64,
}

/// The affinity-aware allocator runtime.
#[derive(Debug)]
pub struct AffinityAllocator {
    space: AddressSpace,
    topo: Topology,
    policy: BankSelectPolicy,
    rng: SimRng,
    rr_next: u32,
    affine_meta: HashMap<VAddr, AffineMeta>,
    /// Free chunks per (interleave, bank), as pool chunk indices.
    free_lists: HashMap<(u64, u32), Vec<u64>>,
    /// Next unallocated chunk index per pool (the runtime owns pool space).
    pool_cursor: HashMap<PoolId, u64>,
    /// Free affine blocks per (pool, start_bank): (chunk offset, chunks).
    affine_free: HashMap<(PoolId, u32), Vec<(u64, u64)>>,
    /// Irregular allocations per bank — the Eq 4 load.
    loads: Vec<u64>,
    /// Bytes resident per bank (capacity-model input).
    resident: Vec<u64>,
    /// Debug-only liveness of irregular objects.
    live_irregular: HashSet<VAddr>,
    stats: AllocStats,
    /// Banks eligible for placement — all banks on a healthy machine, the
    /// non-failed ones under a fault plan, intersected with the tenant
    /// partition when [`restrict_banks`](Self::restrict_banks) is in force.
    healthy: Vec<u32>,
    /// Tenant bank partition (sorted, deduped): placement never leaves this
    /// set, even under faults — isolation dominates availability. `None`
    /// (the default) places on the whole machine.
    allowed: Option<Vec<u32>>,
    /// Whether `free_aff` coalesces: sorted free lists with lowest-address
    /// reuse, whole free bank-cycles promoted to affine blocks, and adjacent
    /// affine blocks merged. Off by default — the legacy LIFO reuse order is
    /// pinned by golden figure bytes; the service layer turns it on.
    coalesce: bool,
    /// The fault plan the Eq-4 load weighting currently reflects. Starts as
    /// the config's static plan; [`apply_fault_plan`](Self::apply_fault_plan)
    /// replaces it when a timeline epoch fires mid-run.
    active_faults: FaultPlan,
    /// Lazily built hop-distance columns for the lane-parallel Eq-4 path:
    /// `dist_cols[a * banks + b] = topo.manhattan(b, a)`, so the column of
    /// one affinity bank `a` is contiguous over every candidate `b`. Built
    /// on the first affinity-driven `select_bank` (Rnd/Lnr never pay for
    /// it); the topology is fixed at construction, so it never invalidates.
    dist_cols: Vec<u16>,
    /// Scratch (reused across calls): dense per-bank affinity hop sums.
    scratch_hops: Vec<u32>,
    /// Scratch: resolved affinity banks of the current `malloc_aff` call.
    scratch_aff: Vec<u32>,
    /// Scratch: per-candidate mean hops / effective loads / Eq-4 scores,
    /// parallel to `healthy`.
    scratch_cand_hops: Vec<f64>,
    scratch_cand_loads: Vec<u64>,
    scratch_scores: Vec<f64>,
    /// Graceful-degradation counters (excluded banks, fallback chain use).
    report: DegradationReport,
    /// Seed for the deterministic affinity-address subsampling stream used
    /// by [`malloc_hinted`](Self::malloc_hinted) when an
    /// [`AffinityHint::Irregular`] carries more than [`MAX_AFFINITY_ADDRS`]
    /// addresses. Split per draw, never shared with `rng` (the Eq-4 `Rnd`
    /// policy stream), so enabling hints cannot perturb policy randomness.
    hint_seed: u64,
    /// Subsampling draws so far — the split-stream index, advanced only by
    /// oversized irregular hints, so allocation order fully determines every
    /// sample.
    hint_draws: u64,
}

/// Largest single allocation the runtime accepts (256 TiB — far past any
/// modeled machine). Requests above it get [`AllocError::Oversized`] before
/// interleave rounding or quota math can overflow.
pub const MAX_ALLOC_BYTES: u64 = 1 << 48;

/// Salt folded into the allocator seed to derive the affinity-subsampling
/// stream, keeping it decoupled from the Eq-4 `Rnd` policy stream.
const HINT_SAMPLE_SALT: u64 = 0x5A3D_17E5_AFF1_0B57;

/// Largest bank count that gets precomputed Eq-4 distance columns (the
/// table is `banks² × 2` bytes — 32 MiB at this cap, 2 MiB at the 32×32
/// geometry the harness actually sweeps). Bigger machines recompute
/// distances per `malloc_aff` instead of holding a quadratic table.
pub const DIST_TABLE_MAX_BANKS: usize = 4096;

/// One step of the affine degradation chain: the Eq-3-derived placement, a
/// coarser-but-valid interleave preserving the start bank, or the baseline
/// heap (always realizable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AffinePlacement {
    /// The exact placement Eq 3 derives.
    Derived(u64, u32),
    /// The derived interleave was unrealizable; the nearest coarser valid
    /// interleave keeps the data in a pool at the intended start bank.
    Coarsened(u64, u32),
    /// Nothing pool-shaped works: baseline heap.
    Heap,
}

impl AffinityAllocator {
    /// New runtime over a fresh address space for `config`'s machine.
    pub fn new(config: MachineConfig, policy: BankSelectPolicy) -> Self {
        Self::with_seed(config, policy, 0xAFF1_71FF)
    }

    /// Like [`Self::new`] with an explicit RNG seed (the `Rnd` policy and
    /// nothing else consumes randomness).
    pub fn with_seed(config: MachineConfig, policy: BankSelectPolicy, seed: u64) -> Self {
        let topo = Topology::for_machine(&config);
        let n = config.num_banks() as usize;
        let mut healthy: Vec<u32> =
            (0..config.num_banks()).filter(|&b| config.bank_is_healthy(b)).collect();
        if healthy.is_empty() {
            // An all-banks-failed plan is rejected by `FaultPlan::validate`;
            // if one reaches us unvalidated, degrade to ignoring it rather
            // than panicking on an empty candidate set.
            healthy = (0..config.num_banks()).collect();
        }
        let report = DegradationReport {
            excluded_banks: u64::from(config.num_banks()) - healthy.len() as u64,
            ..DegradationReport::default()
        };
        let active_faults = config.faults.clone();
        Self {
            space: AddressSpace::new(config),
            topo,
            policy,
            rng: SimRng::new(seed),
            rr_next: 0,
            affine_meta: HashMap::new(),
            free_lists: HashMap::new(),
            pool_cursor: HashMap::new(),
            affine_free: HashMap::new(),
            loads: vec![0; n],
            resident: vec![0; n],
            live_irregular: HashSet::new(),
            stats: AllocStats::default(),
            healthy,
            allowed: None,
            coalesce: false,
            active_faults,
            report,
            dist_cols: Vec::new(),
            scratch_hops: Vec::new(),
            scratch_aff: Vec::new(),
            scratch_cand_hops: Vec::new(),
            scratch_cand_loads: Vec::new(),
            scratch_scores: Vec::new(),
            hint_seed: seed ^ HINT_SAMPLE_SALT,
            hint_draws: 0,
        }
    }

    /// Re-solve placement eligibility under a new fault plan — the
    /// allocator's half of a fault-timeline epoch. Failed banks leave the
    /// Eq-4 candidate set, repaired banks rejoin it, and slowed banks' load
    /// multiplier tracks the new plan. Existing allocations stay where they
    /// are (migration is the cache layer's job); only *subsequent* argmins
    /// see the new machine. An all-dead plan degrades to ignoring the
    /// exclusions, mirroring the constructor.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        // Round-robin state may point at a bank that just died; the Lnr arm
        // skips unhealthy banks, so only the candidate set needs refreshing.
        self.active_faults = plan.clone();
        self.recompute_healthy();
    }

    /// Rebuild the Eq-4 candidate set from the active fault plan and the
    /// tenant partition. The partition is never widened: a partition whose
    /// every bank failed degrades to ignoring the *fault* exclusions (like
    /// the constructor), not to placing on other tenants' banks.
    fn recompute_healthy(&mut self) {
        let banks = self.space.config().num_banks();
        let failed = &self.active_faults.failed_banks;
        let mut healthy: Vec<u32> = match &self.allowed {
            Some(m) => m.iter().copied().filter(|b| !failed.contains(b)).collect(),
            None => (0..banks).filter(|b| !failed.contains(b)).collect(),
        };
        if healthy.is_empty() {
            healthy = match &self.allowed {
                Some(m) => m.clone(),
                None => (0..banks).collect(),
            };
        }
        let eligible = match &self.allowed {
            Some(m) => m.len() as u64,
            None => u64::from(banks),
        };
        self.report.excluded_banks = eligible - healthy.len() as u64;
        self.healthy = healthy;
    }

    /// Restrict placement to `banks` — the tenant-partition hook the
    /// multi-tenant service uses to make shards disjoint. Out-of-range banks
    /// are dropped; duplicates are deduped. Irregular placement (Eq 4) and
    /// every fallback stay inside the partition from here on; already-live
    /// allocations are unaffected.
    ///
    /// # Errors
    ///
    /// [`AllocError::BankPoolExhausted`] when no in-range bank remains.
    pub fn restrict_banks(&mut self, banks: &[u32]) -> Result<(), AllocError> {
        let n = self.space.config().num_banks();
        let mut mask: Vec<u32> = banks.iter().copied().filter(|&b| b < n).collect();
        mask.sort_unstable();
        mask.dedup();
        if mask.is_empty() {
            return Err(AllocError::BankPoolExhausted {
                requested: banks.len() as u32,
                available: 0,
            });
        }
        self.allowed = Some(mask);
        self.recompute_healthy();
        Ok(())
    }

    /// The tenant partition in force, if any (sorted).
    pub fn allowed_banks(&self) -> Option<&[u32]> {
        self.allowed.as_deref()
    }

    /// Toggle free-list coalescing (off by default). With coalescing on,
    /// freed chunks keep their per-(interleave, bank) lists sorted and are
    /// reused lowest-address-first, whole free bank-cycles are promoted to
    /// affine blocks, adjacent affine blocks merge, and
    /// [`reclaim_pool_tails`](Self::reclaim_pool_tails) can consume affine
    /// blocks — the reclamation policy that keeps steady-state churn from
    /// fragmentation collapse. Off, `free_aff` keeps the legacy LIFO reuse
    /// order that the golden figure bytes pin.
    pub fn set_coalescing(&mut self, on: bool) {
        self.coalesce = on;
        if on {
            for list in self.free_lists.values_mut() {
                // Descending, so `pop()` yields the lowest chunk index.
                list.sort_unstable_by(|a, b| b.cmp(a));
            }
        }
    }

    /// Whether free-list coalescing is on.
    pub fn coalescing(&self) -> bool {
        self.coalesce
    }

    /// The fault plan currently steering placement.
    pub fn active_faults(&self) -> &FaultPlan {
        &self.active_faults
    }

    /// The bank-select policy in force.
    pub fn policy(&self) -> BankSelectPolicy {
        self.policy
    }

    /// The mesh topology.
    pub fn topo(&self) -> Topology {
        self.topo
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        self.space.config()
    }

    /// The underlying address space.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Mutable access to the underlying address space.
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// Backing storage (shorthand for `space().memory()`).
    pub fn memory(&self) -> &SimMemory {
        self.space.memory()
    }

    /// Mutable backing storage.
    pub fn memory_mut(&mut self) -> &mut SimMemory {
        self.space.memory_mut()
    }

    /// The L3 bank owning `va`.
    pub fn bank_of(&mut self, va: VAddr) -> u32 {
        self.space.bank_of(va)
    }

    /// Irregular-allocation load per bank (the Eq 4 `load` vector).
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Bytes resident per bank across all live allocations.
    pub fn resident_per_bank(&self) -> &[u64] {
        &self.resident
    }

    /// Allocation statistics so far.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// How much placement degraded under the machine's fault plan: banks
    /// excluded from Eq-4 scoring and affine allocations that walked the
    /// fallback chain. All zeros on a healthy machine with realizable
    /// requests.
    pub fn degradation(&self) -> DegradationReport {
        self.report
    }

    // ---------- baseline path ----------

    /// Baseline `malloc`: bump allocation on the conventional heap (default
    /// 1 KiB static-NUCA interleave). Used by the `In-Core` / `Near-L3`
    /// configurations and as the affine fallback.
    pub fn heap_alloc(&mut self, bytes: u64) -> VAddr {
        let va = self.space.heap_alloc(bytes, CACHE_LINE);
        self.track_residency_spread(va, bytes);
        va
    }

    /// Heap allocation at an arbitrary position: skips a pseudo-random
    /// number of default-interleave chunks first. Models the placement a
    /// long-lived fragmented heap gives small objects (the paper: "when list
    /// nodes are inserted randomly, Lnr would behave the same as Rnd" —
    /// i.e. real baseline pointer structures are scattered, not sequential).
    pub fn heap_alloc_scattered(&mut self, bytes: u64) -> VAddr {
        let intrlv = self.space.config().default_interleave;
        let banks = u64::from(self.space.config().num_banks());
        let skip = self.rng.below(banks) * intrlv;
        let _pad = self.space.heap_alloc(skip, CACHE_LINE);
        self.heap_alloc(bytes)
    }

    fn track_residency_spread(&mut self, va: VAddr, bytes: u64) {
        // Distribute residency across banks following the layout, counting
        // only the bytes actually allocated (a 64 B node occupies 64 B of a
        // bank, not its whole 1 KiB chunk).
        let intrlv = self.space.config().default_interleave;
        let banks = self.resident.len() as u64;
        let start_bank = u64::from(self.space.bank_of(va));
        let mut remaining = bytes;
        let mut off = va.raw() % intrlv;
        let mut bank = start_bank;
        while remaining > 0 {
            let in_chunk = (intrlv - off).min(remaining);
            self.resident[bank as usize] += in_chunk;
            remaining -= in_chunk;
            off = 0;
            bank = (bank + 1) % banks;
            if remaining >= intrlv * banks {
                // Fast path: whole cycles of banks at once.
                let cycles = remaining / (intrlv * banks);
                for b in 0..banks {
                    self.resident[b as usize] += cycles * intrlv;
                }
                remaining -= cycles * intrlv * banks;
            }
        }
    }

    // ---------- affine path (§4.2) ----------

    /// `malloc_aff` for affine arrays (Fig 8(a)).
    ///
    /// Placement walks a typed degradation chain rather than failing: the
    /// Eq-3-derived interleave first, the nearest coarser valid interleave
    /// when the derived one is unrealizable (or its pool cannot grow), and
    /// finally the baseline heap — which always succeeds, so only malformed
    /// *requests* produce errors.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] for invalid requests (zero size, zero ratio,
    /// unknown partner, non-unit intra ratio) only.
    pub fn malloc_aff_affine(&mut self, req: &AffineArrayReq) -> Result<VAddr, AllocError> {
        if req.elem_size == 0 || req.num_elem == 0 {
            return Err(AllocError::ZeroSize);
        }
        if req.align_p == 0 || req.align_q == 0 {
            return Err(AllocError::BadRatio);
        }
        let total = req.checked_total_bytes()?;
        if total > MAX_ALLOC_BYTES {
            return Err(AllocError::Oversized {
                elem_size: req.elem_size,
                num_elem: req.num_elem,
            });
        }
        let mut placement = self.derive_placement(req, total)?;
        loop {
            match placement {
                AffinePlacement::Derived(intrlv, start_bank) => {
                    match self.try_affine_pool(req, total, intrlv, start_bank, true) {
                        Ok(va) => return Ok(va),
                        // The pool could not serve the derived placement
                        // (reservation capped / IOT exhausted): degrade.
                        Err(AllocError::Pool(_)) => {
                            placement = self.coarsen(intrlv, start_bank);
                        }
                        Err(e) => return Err(e),
                    }
                }
                AffinePlacement::Coarsened(intrlv, start_bank) => {
                    self.stats.fallback += 1;
                    self.report.fallback_allocations += 1;
                    match self.try_affine_pool(req, total, intrlv, start_bank, false) {
                        Ok(va) => return Ok(va),
                        Err(AllocError::Pool(_)) => placement = AffinePlacement::Heap,
                        Err(e) => return Err(e),
                    }
                }
                AffinePlacement::Heap => {
                    // Baseline allocator (§4.2 "Freeing Data" still works
                    // because no affine metadata is recorded).
                    self.stats.fallback += 1;
                    self.report.fallback_allocations += 1;
                    return Ok(self.heap_alloc(total));
                }
            }
        }
    }

    /// The next step down the chain after a pool failure at `intrlv`: the
    /// next coarser valid interleave, or the heap when there is none.
    fn coarsen(&self, intrlv: u64, start_bank: u32) -> AffinePlacement {
        let cfg = self.space.config();
        let coarse = cfg.round_up_interleave(intrlv.saturating_mul(2));
        if coarse > intrlv && cfg.is_valid_interleave(coarse) {
            AffinePlacement::Coarsened(coarse, start_bank)
        } else {
            AffinePlacement::Heap
        }
    }

    /// One attempt to place an affine array in the `intrlv` pool at
    /// `start_bank`; records metadata and residency on success. `exact`
    /// marks whether this interleave realizes the request exactly (derived)
    /// or is a coarsened degradation.
    fn try_affine_pool(
        &mut self,
        req: &AffineArrayReq,
        total: u64,
        intrlv: u64,
        start_bank: u32,
        exact: bool,
    ) -> Result<VAddr, AllocError> {
        let pool = self.space.pool_for_interleave(intrlv)?;
        let chunks = total.div_ceil(intrlv);
        let offset_chunk = self.take_affine_chunks(pool, intrlv, start_bank, chunks)?;
        let va = self.space.pools().va_at(pool, offset_chunk * intrlv);
        self.affine_meta.insert(
            va,
            AffineMeta {
                pool,
                intrlv,
                elem_size: req.elem_size,
                num_elem: req.num_elem,
                start_bank,
                offset: offset_chunk,
                bytes: total,
                exact,
            },
        );
        // Residency follows the chunk cycle.
        let banks = self.resident.len() as u64;
        for c in 0..chunks {
            let b = ((u64::from(start_bank) + c) % banks) as usize;
            self.resident[b] += intrlv;
        }
        self.stats.affine += 1;
        Ok(va)
    }

    /// Decide where an affine request enters the degradation chain: the
    /// derived placement when Eq 3 is exactly realizable, a coarsened one
    /// when only the interleave is off, the heap when alignment cannot be
    /// expressed in pool chunks at all.
    fn derive_placement(
        &mut self,
        req: &AffineArrayReq,
        total: u64,
    ) -> Result<AffinePlacement, AllocError> {
        let cfg = self.space.config();
        let banks = u64::from(cfg.num_banks());

        if req.partition {
            // Fig 9: spread the array exactly once across all banks.
            let chunk = total.div_ceil(banks);
            let intrlv = cfg.round_up_interleave(chunk.max(CACHE_LINE));
            return Ok(AffinePlacement::Derived(intrlv, 0));
        }

        if let Some(partner) = req.align_to {
            let Some(meta) = self.affine_meta.get(&partner).copied() else {
                return Err(AllocError::UnknownPartner { addr: partner });
            };
            // Start-bank offset: align_x elements of A, in A-chunks. An
            // imperfect offset cannot be expressed at any interleave, so no
            // coarsening helps (§4.2) — straight to the heap.
            let off_bytes = req.align_x * meta.elem_size;
            if !off_bytes.is_multiple_of(meta.intrlv) {
                return Ok(AffinePlacement::Heap);
            }
            let off_chunks = off_bytes / meta.intrlv;
            let start = ((u64::from(meta.start_bank) + off_chunks) % banks) as u32;
            // Eq 3: intrlv_B = (elem_B/elem_A)·(q/p)·intrlv_A.
            let num = req.elem_size * req.align_q * meta.intrlv;
            let den = meta.elem_size * req.align_p;
            if num.is_multiple_of(den) && cfg.is_valid_interleave(num / den) {
                return Ok(AffinePlacement::Derived(num / den, start));
            }
            // Unrealizable exact interleave: the nearest coarser valid one
            // keeps the array pooled at the intended start bank.
            let coarse = cfg.round_up_interleave(num.div_ceil(den).max(CACHE_LINE));
            if cfg.is_valid_interleave(coarse) {
                return Ok(AffinePlacement::Coarsened(coarse, start));
            }
            return Ok(AffinePlacement::Heap);
        }

        if req.align_x > 0 {
            // Intra-array affinity (Fig 8(c)).
            if req.align_p != 1 || req.align_q != 1 {
                return Err(AllocError::NonUnitIntraRatio);
            }
            let row_bytes = req.align_x * req.elem_size;
            return Ok(match self.pick_intra_interleave(row_bytes, total) {
                Some((intrlv, start)) => AffinePlacement::Derived(intrlv, start),
                None => AffinePlacement::Heap,
            });
        }

        // Plain array: default to cache-line interleave.
        Ok(AffinePlacement::Derived(CACHE_LINE, 0))
    }

    /// Choose the valid interleave minimizing the mean Manhattan distance
    /// between elements `i` and `i + stride` (Fig 8(c)); `None` if no
    /// candidate divides the row evenly.
    ///
    /// For chunks holding `k` whole rows, only `1/k` of vertical-neighbor
    /// pairs cross a chunk boundary (to the adjacent bank); the rest are
    /// bank-local — "fit one or multiple rows into a single bank to further
    /// reduce the distance" (§4.2). Chunks are capped so the array still
    /// spreads over at least two chunks per bank (bank-level parallelism).
    fn pick_intra_interleave(&self, row_bytes: u64, total_bytes: u64) -> Option<(u64, u32)> {
        let cfg = self.space.config();
        let banks = cfg.num_banks();
        // Mean distance between consecutively numbered banks (row-major:
        // mostly 1 hop, mesh-row wrap pays the long way back).
        let mean_adjacent: f64 = f64::from(
            (0..banks)
                .map(|j| self.topo.manhattan(j, (j + 1) % banks))
                .sum::<u32>(),
        ) / f64::from(banks);
        let cap = (total_bytes / (2 * u64::from(banks))).max(row_bytes);

        let mut candidates = cfg.supported_interleaves();
        for k in 1..=16u64 {
            let c = k * row_bytes;
            if cfg.is_valid_interleave(c) && !candidates.contains(&c) {
                candidates.push(c);
            }
        }
        let mut best: Option<(f64, u64)> = None;
        for c in candidates {
            if c > cap && c > row_bytes {
                continue;
            }
            let dist = if c >= row_bytes {
                if c % row_bytes != 0 {
                    continue;
                }
                let rows_per_chunk = c / row_bytes;
                mean_adjacent / rows_per_chunk as f64
            } else {
                if !row_bytes.is_multiple_of(c) {
                    continue;
                }
                let delta = ((row_bytes / c) % u64::from(banks)) as u32;
                let total: u32 = (0..banks)
                    .map(|j| self.topo.manhattan(j, (j + delta) % banks))
                    .sum();
                f64::from(total) / f64::from(banks)
            };
            let better = match best {
                None => true,
                // Tie-break toward the larger interleave (fewer migrations).
                Some((bd, bc)) => dist < bd - 1e-12 || (dist < bd + 1e-12 && c > bc),
            };
            if better {
                best = Some((dist, c));
            }
        }
        best.map(|(_, c)| (c, 0))
    }

    /// Carve `chunks` contiguous chunks starting at a chunk whose bank is
    /// `start_bank`, reusing freed affine blocks first.
    fn take_affine_chunks(
        &mut self,
        pool: PoolId,
        intrlv: u64,
        start_bank: u32,
        chunks: u64,
    ) -> Result<u64, AllocError> {
        if let Some(blocks) = self.affine_free.get_mut(&(pool, start_bank)) {
            if let Some(pos) = blocks.iter().position(|&(_, n)| n >= chunks) {
                let (off, n) = blocks[pos];
                if n == chunks {
                    blocks.swap_remove(pos);
                } else {
                    // The remainder no longer starts at start_bank; recycle
                    // it under its actual start bank.
                    blocks.swap_remove(pos);
                    let banks = u64::from(self.space.config().num_banks());
                    let rem_bank = ((off + chunks) % banks) as u32;
                    self.affine_free
                        .entry((pool, rem_bank))
                        .or_default()
                        .push((off + chunks, n - chunks));
                }
                return Ok(off);
            }
        }
        let banks = u64::from(self.space.config().num_banks());
        let cursor = self.pool_cursor.entry(pool).or_insert(0);
        let mut c = *cursor;
        // Skip chunks until the bank matches, donating them to the irregular
        // free lists (they are perfectly reusable there).
        let mut donated = Vec::new();
        while c % banks != u64::from(start_bank) {
            donated.push(c);
            c += 1;
        }
        *cursor = c + chunks;
        for d in donated {
            self.push_free_chunk(intrlv, (d % banks) as u32, d);
        }
        let end = (c + chunks) * intrlv;
        self.space.pool_expand(pool, end)?;
        Ok(c)
    }

    /// Interleave and start bank of an *exactly realized* affine array
    /// (figure harness introspection). `None` for heap fallbacks and for
    /// coarsened placements from the degradation chain — those are pooled
    /// but do not honour per-element `align_to` colocation.
    pub fn affine_layout(&self, va: VAddr) -> Option<(u64, u32)> {
        self.affine_meta
            .get(&va)
            .filter(|m| m.exact)
            .map(|m| (m.intrlv, m.start_bank))
    }

    // ---------- irregular path (§5) ----------

    /// `malloc_aff` for irregular objects (Fig 10): allocate `size` bytes
    /// close to `aff_addrs`, subject to the bank-select policy.
    ///
    /// # Errors
    ///
    /// [`AllocError::ZeroSize`], [`AllocError::TooManyAffinityAddrs`], or a
    /// pool failure.
    pub fn malloc_aff(&mut self, size: u64, aff_addrs: &[VAddr]) -> Result<VAddr, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        if size > MAX_ALLOC_BYTES {
            // Interleave rounding (`div_ceil · PAGE_SIZE`) would overflow
            // past this; surface a typed rejection instead.
            return Err(AllocError::Oversized {
                elem_size: size,
                num_elem: 1,
            });
        }
        if aff_addrs.len() > MAX_AFFINITY_ADDRS {
            return Err(AllocError::TooManyAffinityAddrs {
                got: aff_addrs.len(),
            });
        }
        let intrlv = self.space.config().round_up_interleave(size);
        let bank = self.select_bank(aff_addrs);
        let pool = self.space.pool_for_interleave(intrlv)?;
        let chunk = self.take_irregular_chunk(pool, intrlv, bank)?;
        let va = self.space.pools().va_at(pool, chunk * intrlv);
        self.loads[bank as usize] += 1;
        self.resident[bank as usize] += intrlv;
        self.live_irregular.insert(va);
        self.stats.irregular += 1;
        Ok(va)
    }

    /// The unified hint-driven entry point: one call for every
    /// [`AffinityHint`] variant, whether hand-annotated or emitted by an
    /// inferred `AffinityProfile`.
    ///
    /// * Array-shaped hints (`AlignTo`, `IntraStride`, `Partition`) route to
    ///   [`malloc_aff_affine`](Self::malloc_aff_affine) via
    ///   [`AffineArrayReq::with_hint`].
    /// * `Irregular` routes to [`malloc_aff`](Self::malloc_aff); a set past
    ///   [`MAX_AFFINITY_ADDRS`] is **subsampled deterministically** (seeded
    ///   split-RNG partial shuffle keyed by allocation order) instead of
    ///   rejected — §5.1 says the *application* samples, and the inferred
    ///   path has no application in the loop to do it.
    /// * `None` is an unhinted irregular allocation (Eq 4 over an empty
    ///   affinity set).
    ///
    /// # Errors
    ///
    /// As the underlying path; `TooManyAffinityAddrs` is impossible here.
    pub fn malloc_hinted(
        &mut self,
        elem_size: u64,
        num_elem: u64,
        hint: &AffinityHint,
    ) -> Result<VAddr, AllocError> {
        match hint {
            AffinityHint::None => {
                let req = AffineArrayReq::new(elem_size, num_elem);
                self.malloc_aff(req.checked_total_bytes()?.max(1), &[])
            }
            AffinityHint::Irregular { aff_addrs } => {
                let req = AffineArrayReq::new(elem_size, num_elem);
                let total = req.checked_total_bytes()?.max(1);
                if aff_addrs.len() <= MAX_AFFINITY_ADDRS {
                    self.malloc_aff(total, aff_addrs)
                } else {
                    let sampled = self.sample_aff_addrs(aff_addrs);
                    self.malloc_aff(total, &sampled)
                }
            }
            AffinityHint::AlignTo { .. } | AffinityHint::IntraStride { .. } | AffinityHint::Partition => {
                self.malloc_aff_affine(&AffineArrayReq::with_hint(elem_size, num_elem, hint))
            }
        }
    }

    /// Subsample an oversized affinity set down to [`MAX_AFFINITY_ADDRS`]
    /// entries: a partial Fisher–Yates shuffle over the index range, driven
    /// by a split RNG stream keyed on `(hint_seed, hint_draws)`. Unlike the
    /// old first-N truncation callers used to apply by hand, every address
    /// has equal selection probability, yet the choice is a pure function of
    /// the allocator seed and allocation order — byte-identical across runs
    /// and `--jobs` schedules. The sample preserves original relative order
    /// so `select_bank`'s hop accumulation stays order-independent of the
    /// shuffle.
    fn sample_aff_addrs(&mut self, aff_addrs: &[VAddr]) -> Vec<VAddr> {
        let mut rng = SimRng::split(self.hint_seed, self.hint_draws);
        self.hint_draws += 1;
        let n = aff_addrs.len();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        for k in 0..MAX_AFFINITY_ADDRS {
            let j = k as u64 + rng.below((n - k) as u64);
            idx.swap(k, j as usize);
        }
        let mut keep = idx[..MAX_AFFINITY_ADDRS].to_vec();
        keep.sort_unstable();
        keep.iter().map(|&i| aff_addrs[i as usize]).collect()
    }

    /// Eq 4 bank selection over the healthy banks only: failed banks are
    /// excluded from every policy, and slowed banks see their load term
    /// multiplied by their fault slowdown (a 4×-slower bank looks 4× as
    /// loaded, so Eq 4 naturally steers allocations away from it).
    /// Build the dense hop-distance columns for the lane-parallel Eq-4 path,
    /// capped at [`DIST_TABLE_MAX_BANKS`] banks (16 MiB of `u16`s at the
    /// cap). Geometries past the cap keep an empty table and recompute
    /// distances per call — same math, just without the precomputed columns.
    fn ensure_dist_cols(&mut self) {
        let n = self.space.config().num_banks() as usize;
        if !self.dist_cols.is_empty() || n == 0 || n > DIST_TABLE_MAX_BANKS {
            return;
        }
        let mut cols = vec![0u16; n * n];
        for a in 0..n {
            let col = &mut cols[a * n..][..n];
            for (b, slot) in col.iter_mut().enumerate() {
                let d = self.topo.manhattan(b as u32, a as u32);
                debug_assert!(d <= u32::from(u16::MAX));
                *slot = d as u16;
            }
        }
        self.dist_cols = cols;
    }

    fn select_bank(&mut self, aff_addrs: &[VAddr]) -> u32 {
        let banks = self.space.config().num_banks();
        match self.policy {
            BankSelectPolicy::Rnd => {
                let i = self.rng.below(self.healthy.len() as u64) as usize;
                self.healthy[i]
            }
            BankSelectPolicy::Lnr => {
                let mut b = self.rr_next;
                while !self.healthy.contains(&b) {
                    b = (b + 1) % banks;
                }
                self.rr_next = (b + 1) % banks;
                b
            }
            BankSelectPolicy::MinHop | BankSelectPolicy::Hybrid { .. } => {
                let h = match self.policy {
                    BankSelectPolicy::Hybrid { h } => h,
                    _ => 0.0,
                };
                // Lane-parallel Eq 4 (see `crate::lanes`): the same argmin
                // the scalar iterator computed, restated as dense straight-
                // line passes. Bit-identical by construction — hop sums are
                // exact integer adds, each candidate's score is evaluated by
                // the same `score` arithmetic, and the argmin uses the same
                // total order and lowest-id tie-break.
                self.scratch_aff.clear();
                for &a in aff_addrs {
                    self.scratch_aff.push(self.space.bank_of(a));
                }
                let total_load: u64 = crate::lanes::sum_u64(&self.loads);
                let avg_load = total_load as f64 / f64::from(banks);
                self.ensure_dist_cols();
                let n = banks as usize;
                // Dense hop sums: one contiguous u16 distance-column add per
                // affinity address replaces per-candidate coordinate math.
                self.scratch_hops.clear();
                self.scratch_hops.resize(n, 0);
                if self.dist_cols.is_empty() {
                    // Geometry past the table cap: same exact integer sums,
                    // recomputed per call.
                    for &a in &self.scratch_aff {
                        for (b, acc) in self.scratch_hops.iter_mut().enumerate() {
                            *acc += self.topo.manhattan(b as u32, a);
                        }
                    }
                } else {
                    for &a in &self.scratch_aff {
                        add_u16_column(
                            &mut self.scratch_hops,
                            &self.dist_cols[a as usize * n..][..n],
                        );
                    }
                }
                // Gather the healthy candidates' inputs, then score + argmin
                // over the packed slices.
                let aff_len = self.scratch_aff.len();
                self.scratch_cand_hops.clear();
                self.scratch_cand_loads.clear();
                for i in 0..self.healthy.len() {
                    let b = self.healthy[i];
                    let avg_hops = if aff_len == 0 {
                        0.0
                    } else {
                        f64::from(self.scratch_hops[b as usize]) / aff_len as f64
                    };
                    self.scratch_cand_hops.push(avg_hops);
                    self.scratch_cand_loads
                        .push(self.loads[b as usize] * self.active_faults.bank_slowdown(b));
                }
                self.scratch_scores.clear();
                self.scratch_scores.resize(self.healthy.len(), 0.0);
                score_lanes(
                    &self.scratch_cand_hops,
                    &self.scratch_cand_loads,
                    avg_load,
                    h,
                    &mut self.scratch_scores,
                );
                argmin_score_lanes(&self.healthy, &self.scratch_scores)
                    .unwrap_or_else(|| self.healthy.first().copied().unwrap_or(0))
            }
        }
    }

    fn take_irregular_chunk(
        &mut self,
        pool: PoolId,
        intrlv: u64,
        bank: u32,
    ) -> Result<u64, AllocError> {
        if let Some(list) = self.free_lists.get_mut(&(intrlv, bank)) {
            // Legacy LIFO when coalescing is off; with coalescing the list
            // is kept descending, so `pop` is lowest-address-first — high
            // chunks stay free for tail reclaim.
            if let Some(chunk) = list.pop() {
                self.stats.freelist_hits += 1;
                return Ok(chunk);
            }
        }
        if let Some(chunk) = self.demote_affine_chunk(pool, bank) {
            self.stats.freelist_hits += 1;
            return Ok(chunk);
        }
        let banks = u64::from(self.space.config().num_banks());
        let cursor = self.pool_cursor.entry(pool).or_insert(0);
        let mut c = *cursor;
        let mut donated = Vec::new();
        while c % banks != u64::from(bank) {
            donated.push(c);
            c += 1;
        }
        *cursor = c + 1;
        for d in donated {
            self.push_free_chunk(intrlv, (d % banks) as u32, d);
        }
        let end = (c + 1) * intrlv;
        self.space.pool_expand(pool, end)?;
        Ok(c)
    }

    /// Add one chunk to its `(interleave, bank)` free list, preserving the
    /// descending order coalescing relies on (plain push otherwise).
    fn push_free_chunk(&mut self, intrlv: u64, bank: u32, chunk: u64) {
        let coalesce = self.coalesce;
        let list = self.free_lists.entry((intrlv, bank)).or_default();
        if coalesce {
            let pos = list.partition_point(|&c| c > chunk);
            list.insert(pos, chunk);
        } else {
            list.push(chunk);
        }
    }

    /// Insert a free affine block, merging it (when coalescing) with any
    /// adjacent free block of the same pool — the affine half of
    /// adjacent-chunk coalescing. Blocks are keyed by the bank of their
    /// first chunk, so a merged block may change key.
    fn insert_affine_block(&mut self, pool: PoolId, mut off: u64, mut chunks: u64) {
        let banks = u64::from(self.space.config().num_banks());
        if self.coalesce {
            loop {
                let mut merged = false;
                let mut keys: Vec<(PoolId, u32)> = self
                    .affine_free
                    .keys()
                    .copied()
                    .filter(|&(p, _)| p == pool)
                    .collect();
                // HashMap key order is arbitrary; sort so which neighbor
                // merges first is deterministic.
                keys.sort_unstable();
                'scan: for k in keys {
                    let Some(blocks) = self.affine_free.get_mut(&k) else {
                        continue;
                    };
                    for i in 0..blocks.len() {
                        let (o, n) = blocks[i];
                        if o + n == off {
                            blocks.swap_remove(i);
                            off = o;
                            chunks += n;
                            merged = true;
                            break 'scan;
                        }
                        if off + chunks == o {
                            blocks.swap_remove(i);
                            chunks += n;
                            merged = true;
                            break 'scan;
                        }
                    }
                }
                if !merged {
                    break;
                }
            }
        }
        let bank = (off % banks) as u32;
        self.affine_free
            .entry((pool, bank))
            .or_default()
            .push((off, chunks));
    }

    /// Promote the bank-cycle containing `chunk` to an affine block if every
    /// chunk of the cycle is free — irregular frees coalescing up into
    /// affine-reusable (and tail-reclaimable) space. Coalescing-only.
    fn try_promote_cycle(&mut self, pool: PoolId, intrlv: u64, chunk: u64) {
        let banks = u64::from(self.space.config().num_banks());
        let base = (chunk / banks) * banks;
        for b in 0..banks {
            let free = self
                .free_lists
                .get(&(intrlv, b as u32))
                .is_some_and(|l| l.binary_search_by(|c| (base + b).cmp(c)).is_ok());
            if !free {
                return;
            }
        }
        for b in 0..banks {
            if let Some(list) = self.free_lists.get_mut(&(intrlv, b as u32)) {
                if let Ok(pos) = list.binary_search_by(|c| (base + b).cmp(c)) {
                    list.remove(pos);
                }
            }
        }
        self.insert_affine_block(pool, base, banks);
    }

    /// Carve one chunk whose bank is `bank` out of a free affine block of
    /// `pool` — the demotion that lets irregular churn reuse coalesced
    /// space instead of growing the pool. Remainders re-enter the affine
    /// free lists under their own start banks. Coalescing-only.
    fn demote_affine_chunk(&mut self, pool: PoolId, bank: u32) -> Option<u64> {
        if !self.coalesce {
            return None;
        }
        let banks = u64::from(self.space.config().num_banks());
        let mut keys: Vec<(PoolId, u32)> = self
            .affine_free
            .keys()
            .copied()
            .filter(|&(p, _)| p == pool)
            .collect();
        // Sorted scan: which block donates must not depend on HashMap order.
        keys.sort_unstable();
        for k in keys {
            let Some(blocks) = self.affine_free.get_mut(&k) else {
                continue;
            };
            for i in 0..blocks.len() {
                let (off, n) = blocks[i];
                // First chunk of the block with residue `bank`, if inside.
                let first = off + ((u64::from(bank) + banks - off % banks) % banks);
                if first < off + n {
                    blocks.swap_remove(i);
                    let left = first - off;
                    let right = off + n - first - 1;
                    if left > 0 {
                        self.insert_affine_block(pool, off, left);
                    }
                    if right > 0 {
                        self.insert_affine_block(pool, first + 1, right);
                    }
                    return Some(first);
                }
            }
        }
        None
    }

    // ---------- dynamic re-placement (§8 "Dynamic Data Structures") ----------

    /// Re-place a live irregular object whose affinity changed — e.g. a tree
    /// node re-inserted under a different parent, or a linked-CSR node whose
    /// edges now point elsewhere (§8). The object is re-scored under the
    /// current policy with the *new* affinity addresses; if a different bank
    /// wins, its bytes move there and the old chunk returns to the free
    /// list. Returns the (possibly unchanged) address.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownAddress`] if `va` is not a live irregular
    /// object; [`AllocError::TooManyAffinityAddrs`]; pool failures.
    pub fn realloc_aff(&mut self, va: VAddr, aff_addrs: &[VAddr]) -> Result<VAddr, AllocError> {
        if aff_addrs.len() > MAX_AFFINITY_ADDRS {
            return Err(AllocError::TooManyAffinityAddrs {
                got: aff_addrs.len(),
            });
        }
        let Some(pool) = self.space.pools().pool_of(va) else {
            return Err(AllocError::UnknownAddress { addr: va });
        };
        if !self.live_irregular.contains(&va) {
            return Err(AllocError::UnknownAddress { addr: va });
        }
        let intrlv = self.space.pools().interleave(pool);
        let old_bank = self.space.bank_of(va);
        let new_bank = self.select_bank(aff_addrs);
        if new_bank == old_bank {
            return Ok(va);
        }
        // Allocate first, copy, then free — never a window with no backing.
        let chunk = self.take_irregular_chunk(pool, intrlv, new_bank)?;
        let new_va = self.space.pools().va_at(pool, chunk * intrlv);
        let mut buf = vec![0u8; intrlv as usize];
        self.space.memory().read_bytes(va, &mut buf);
        self.space.memory_mut().write_bytes(new_va, &buf);
        self.loads[new_bank as usize] += 1;
        self.resident[new_bank as usize] += intrlv;
        self.live_irregular.insert(new_va);
        self.stats.irregular += 1;
        self.free_aff(va)?;
        Ok(new_va)
    }

    // ---------- fragmentation (§8 "Fragmentation") ----------

    /// Snapshot of allocator fragmentation: how much pool space sits on
    /// free lists versus live, per interleave size.
    pub fn fragmentation(&self) -> FragmentationReport {
        let mut free_bytes_per_interleave: Vec<(u64, u64)> = Vec::new();
        let mut free_bytes = 0u64;
        for (&(intrlv, _bank), list) in &self.free_lists {
            let bytes = list.len() as u64 * intrlv;
            free_bytes += bytes;
            match free_bytes_per_interleave.iter_mut().find(|(i, _)| *i == intrlv) {
                Some((_, b)) => *b += bytes,
                None => free_bytes_per_interleave.push((intrlv, bytes)),
            }
        }
        let mut affine_free_bytes = 0u64;
        for (&(pool, _), blocks) in &self.affine_free {
            let intrlv = self.space.pools().interleave(pool);
            affine_free_bytes += blocks.iter().map(|&(_, n)| n * intrlv).sum::<u64>();
        }
        free_bytes_per_interleave.sort_unstable();
        FragmentationReport {
            live_bytes: self.resident.iter().sum(),
            free_bytes,
            affine_free_bytes,
            free_bytes_per_interleave,
        }
    }

    /// Reclaim pool tails (§8: "the OS can still reclaim pages at both ends
    /// by shrinking the interleave pool"): trailing free chunks at each
    /// pool's bump cursor are handed back, so the next allocation reuses
    /// them without growing the pool. Returns the bytes reclaimed.
    pub fn reclaim_pool_tails(&mut self) -> u64 {
        let banks = u64::from(self.space.config().num_banks());
        let mut reclaimed = 0u64;
        let mut pools: Vec<(PoolId, u64)> =
            self.pool_cursor.iter().map(|(&p, &c)| (p, c)).collect();
        pools.sort_unstable();
        for (pool, mut cursor) in pools {
            let intrlv = self.space.pools().interleave(pool);
            'trim: while cursor > 0 {
                let tail_chunk = cursor - 1;
                let bank = (tail_chunk % banks) as u32;
                if let Some(list) = self.free_lists.get_mut(&(intrlv, bank)) {
                    if let Some(pos) = list.iter().position(|&c| c == tail_chunk) {
                        if self.coalesce {
                            // Order-preserving: the list stays descending.
                            list.remove(pos);
                        } else {
                            list.swap_remove(pos);
                        }
                        cursor = tail_chunk;
                        reclaimed += intrlv;
                        continue 'trim;
                    }
                }
                if self.coalesce {
                    // A coalesced affine block ending exactly at the cursor
                    // is a tail too — hand the whole block back.
                    let mut hit = None;
                    for (&(p, b), blocks) in &self.affine_free {
                        if p != pool {
                            continue;
                        }
                        if let Some(pos) =
                            blocks.iter().position(|&(o, n)| o + n == cursor)
                        {
                            hit = Some(((p, b), pos));
                            break;
                        }
                    }
                    if let Some((key, pos)) = hit {
                        if let Some(blocks) = self.affine_free.get_mut(&key) {
                            let (o, n) = blocks.swap_remove(pos);
                            cursor = o;
                            reclaimed += n * intrlv;
                            continue 'trim;
                        }
                    }
                }
                break;
            }
            self.pool_cursor.insert(pool, cursor);
        }
        reclaimed
    }

    // ---------- free ----------

    /// `free_aff`: releases either kind of allocation. The runtime
    /// distinguishes affine arrays by its own metadata; irregular objects'
    /// interleave is inferred from the owning pool (§5.1).
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownAddress`] for addresses this allocator did not
    /// hand out (heap fallback addresses are silently accepted, matching a
    /// baseline `free`).
    pub fn free_aff(&mut self, va: VAddr) -> Result<(), AllocError> {
        if let Some(meta) = self.affine_meta.remove(&va) {
            let chunks = meta.bytes.div_ceil(meta.intrlv);
            self.insert_affine_block(meta.pool, meta.offset, chunks);
            let banks = self.resident.len() as u64;
            for c in 0..chunks {
                let b = ((u64::from(meta.start_bank) + c) % banks) as usize;
                self.resident[b] = self.resident[b].saturating_sub(meta.intrlv);
            }
            self.stats.freed += 1;
            return Ok(());
        }
        if let Some(pool) = self.space.pools().pool_of(va) {
            if !self.live_irregular.remove(&va) {
                return Err(AllocError::UnknownAddress { addr: va });
            }
            let intrlv = self.space.pools().interleave(pool);
            let off = va.offset_from(self.space.pools().va_start(pool));
            let chunk = off / intrlv;
            let bank = self.space.pools().bank_of_offset(pool, off);
            self.push_free_chunk(intrlv, bank, chunk);
            if self.coalesce {
                self.try_promote_cycle(pool, intrlv, chunk);
            }
            self.loads[bank as usize] = self.loads[bank as usize].saturating_sub(1);
            self.resident[bank as usize] = self.resident[bank as usize].saturating_sub(intrlv);
            self.stats.freed += 1;
            return Ok(());
        }
        if va.raw() >= aff_mem::space::HEAP_VA_BASE {
            // Heap fallback allocation: bump allocator, free is a no-op.
            self.stats.freed += 1;
            return Ok(());
        }
        Err(AllocError::UnknownAddress { addr: va })
    }
}

#[cfg(test)]
// The legacy builder chains stay under test on purpose: they are deprecated
// shims whose allocation results must remain byte-identical to the hint API.
#[allow(deprecated)]
mod tests {
    use super::*;

    fn alloc(policy: BankSelectPolicy) -> AffinityAllocator {
        AffinityAllocator::new(MachineConfig::paper_default(), policy)
    }

    fn hybrid() -> AffinityAllocator {
        alloc(BankSelectPolicy::paper_default())
    }

    // ----- affine -----

    #[test]
    fn fig8b_inter_array_affinity() {
        let mut a = hybrid();
        // float A[N] default: 64B interleave, bank 0.
        let va_a = a
            .malloc_aff_affine(&AffineArrayReq::new(4, 4096))
            .unwrap();
        assert_eq!(a.affine_layout(va_a), Some((64, 0)));
        // float B[N] aligned to A: same interleave, same start bank.
        let va_b = a
            .malloc_aff_affine(&AffineArrayReq::new(4, 4096).align_to(va_a))
            .unwrap();
        assert_eq!(a.affine_layout(va_b), Some((64, 0)));
        // double C[N] aligned to A: Eq 3 doubles the interleave.
        let va_c = a
            .malloc_aff_affine(&AffineArrayReq::new(8, 4096).align_to(va_a))
            .unwrap();
        assert_eq!(a.affine_layout(va_c), Some((128, 0)));
        // Element i of all three lands on the same bank.
        for i in [0u64, 1, 15, 16, 100, 4095] {
            let ba = a.bank_of(va_a + i * 4);
            let bb = a.bank_of(va_b + i * 4);
            let bc = a.bank_of(va_c + i * 8);
            assert_eq!(ba, bb, "A/B misaligned at element {i}");
            assert_eq!(ba, bc, "A/C misaligned at element {i}");
        }
    }

    #[test]
    fn align_with_offset_shifts_start_bank() {
        let mut a = hybrid();
        let va_a = a
            .malloc_aff_affine(&AffineArrayReq::new(4, 4096))
            .unwrap();
        // B[i] aligns to A[i + 32]: 32 elements = 2 chunks of 64B.
        let va_b = a
            .malloc_aff_affine(
                &AffineArrayReq::new(4, 4096)
                    .align_to(va_a)
                    .align_ratio(1, 1, 32),
            )
            .unwrap();
        assert_eq!(a.affine_layout(va_b), Some((64, 2)));
        // B[0] sits with A[32].
        assert_eq!(a.bank_of(va_b), a.bank_of(va_a + 32 * 4));
    }

    #[test]
    fn ratio_alignment_scales_interleave_down() {
        let mut a = hybrid();
        // A with 256B interleave via intra trick: use elem 4, default then align.
        let va_a = a
            .malloc_aff_affine(&AffineArrayReq::new(16, 1024))
            .unwrap();
        // B[i] aligns to A[4i] (p=4, q=1): intrlv_B = (4/16)*(1/4)*64 = 4 — invalid ⇒ fallback.
        let st = a.stats();
        let _vb = a
            .malloc_aff_affine(
                &AffineArrayReq::new(4, 1024)
                    .align_to(va_a)
                    .align_ratio(4, 1, 0),
            )
            .unwrap();
        assert_eq!(a.stats().fallback, st.fallback + 1);
    }

    #[test]
    fn imperfect_offset_falls_back() {
        let mut a = hybrid();
        let va_a = a
            .malloc_aff_affine(&AffineArrayReq::new(4, 4096))
            .unwrap();
        // Offset of 3 elements = 12 bytes: not a multiple of the 64B chunk.
        let before = a.stats().fallback;
        a.malloc_aff_affine(
            &AffineArrayReq::new(4, 4096)
                .align_to(va_a)
                .align_ratio(1, 1, 3),
        )
        .unwrap();
        assert_eq!(a.stats().fallback, before + 1);
    }

    #[test]
    fn unknown_partner_is_an_error() {
        let mut a = hybrid();
        let err = a
            .malloc_aff_affine(&AffineArrayReq::new(4, 16).align_to(VAddr(0xDEAD)))
            .unwrap_err();
        assert!(matches!(err, AllocError::UnknownPartner { .. }));
    }

    #[test]
    fn partition_spreads_once_across_banks() {
        let mut a = hybrid();
        let n = 64 * 1024u64; // 64k 4-byte elements = 256 KiB
        let va = a
            .malloc_aff_affine(&AffineArrayReq::new(4, n).partitioned())
            .unwrap();
        let (intrlv, start) = a.affine_layout(va).unwrap();
        assert_eq!(start, 0);
        assert_eq!(intrlv, 4096); // 256 KiB / 64 banks = 4 KiB
        // First and last element of each partition share that bank.
        assert_eq!(a.bank_of(va), 0);
        assert_eq!(a.bank_of(va + intrlv), 1);
        assert_eq!(a.bank_of(va + 63 * intrlv), 63);
    }

    #[test]
    fn intra_array_minimizes_vertical_distance() {
        let mut a = hybrid();
        let topo = a.topo();
        // A[M][N] with N = 1024 floats: row = 4096B = 64 chunks of 64B —
        // a full bank cycle, so the 64B interleave makes i and i+N land on
        // the *same* bank. The runtime must find a zero-distance layout.
        let va = a
            .malloc_aff_affine(&AffineArrayReq::new(4, 64 * 1024).intra_stride(1024))
            .unwrap();
        let row = 1024u64;
        let mut hops = 0u32;
        for i in (0..63 * row).step_by(333) {
            hops += topo.manhattan(a.bank_of(va + i * 4), a.bank_of(va + (i + row) * 4));
        }
        assert_eq!(hops, 0, "4096B rows cycle all 64 banks exactly: distance 0");
    }

    #[test]
    fn intra_array_multi_row_chunks_cut_crossings() {
        let mut a = hybrid();
        let topo = a.topo();
        // Row of 640 floats = 2560B: no interleave divides the row into a
        // full bank cycle, so the runtime packs multiple rows per chunk and
        // only chunk-boundary rows pay a hop.
        let row = 640u64;
        let va = a
            .malloc_aff_affine(&AffineArrayReq::new(4, 4096 * row).intra_stride(row))
            .unwrap();
        let (intrlv, _) = a.affine_layout(va).unwrap();
        assert_eq!(intrlv % 2560, 0, "chunk holds whole rows");
        let mut hops = 0u64;
        let mut samples = 0u64;
        for i in (0..4095 * row).step_by(997) {
            hops += u64::from(
                topo.manhattan(a.bank_of(va + i * 4), a.bank_of(va + (i + row) * 4)),
            );
            samples += 1;
        }
        let avg = hops as f64 / samples as f64;
        assert!(avg < 1.0, "multi-row chunks must beat one-hop-per-row, got {avg:.2}");
    }

    #[test]
    fn intra_non_unit_ratio_rejected() {
        let mut a = hybrid();
        let err = a
            .malloc_aff_affine(
                &AffineArrayReq::new(4, 1024)
                    .intra_stride(64)
                    .align_ratio(2, 1, 64),
            )
            .unwrap_err();
        assert_eq!(err, AllocError::NonUnitIntraRatio);
    }

    // ----- irregular -----

    #[test]
    fn irregular_with_affinity_colocates() {
        let mut a = alloc(BankSelectPolicy::MinHop);
        let head = a.malloc_aff(64, &[]).unwrap();
        let next = a.malloc_aff(64, &[head]).unwrap();
        assert_eq!(a.bank_of(head), a.bank_of(next));
    }

    #[test]
    fn hybrid_spills_under_load() {
        let mut a = hybrid();
        let head = a.malloc_aff(64, &[]).unwrap();
        let home = a.bank_of(head);
        let mut spilled = false;
        let mut prev = head;
        for _ in 0..2000 {
            let n = a.malloc_aff(64, &[prev]).unwrap();
            if a.bank_of(n) != home {
                spilled = true;
                break;
            }
            prev = n;
        }
        assert!(spilled, "Hybrid-5 must eventually balance load");
    }

    #[test]
    fn min_hop_never_spills() {
        let mut a = alloc(BankSelectPolicy::MinHop);
        let head = a.malloc_aff(64, &[]).unwrap();
        let home = a.bank_of(head);
        for _ in 0..500 {
            let n = a.malloc_aff(64, &[head]).unwrap();
            assert_eq!(a.bank_of(n), home, "Min-Hop ignores load (the Fig 13 pathology)");
        }
        assert_eq!(a.loads()[home as usize], 501);
    }

    #[test]
    fn lnr_is_round_robin() {
        let mut a = alloc(BankSelectPolicy::Lnr);
        let v0 = a.malloc_aff(64, &[]).unwrap();
        let v1 = a.malloc_aff(64, &[]).unwrap();
        let v2 = a.malloc_aff(64, &[]).unwrap();
        let (b0, b1, b2) = (a.bank_of(v0), a.bank_of(v1), a.bank_of(v2));
        assert_eq!(b1, (b0 + 1) % 64);
        assert_eq!(b2, (b0 + 2) % 64);
    }

    #[test]
    fn rnd_is_deterministic_per_seed() {
        let cfg = MachineConfig::paper_default;
        let mut a = AffinityAllocator::with_seed(cfg(), BankSelectPolicy::Rnd, 7);
        let mut b = AffinityAllocator::with_seed(cfg(), BankSelectPolicy::Rnd, 7);
        for _ in 0..32 {
            let va = a.malloc_aff(64, &[]).unwrap();
            let vb = b.malloc_aff(64, &[]).unwrap();
            assert_eq!(a.bank_of(va), b.bank_of(vb));
        }
    }

    #[test]
    fn sizes_round_to_interleaves() {
        let mut a = hybrid();
        let v = a.malloc_aff(100, &[]).unwrap();
        let pool = a.space().pools().pool_of(v).unwrap();
        assert_eq!(a.space().pools().interleave(pool), 128);
    }

    #[test]
    fn too_many_affinity_addrs() {
        let mut a = hybrid();
        let addrs = vec![VAddr(0); MAX_AFFINITY_ADDRS + 1];
        assert!(matches!(
            a.malloc_aff(64, &addrs),
            Err(AllocError::TooManyAffinityAddrs { got: 33 })
        ));
    }

    #[test]
    fn zero_size_rejected_everywhere() {
        let mut a = hybrid();
        assert_eq!(a.malloc_aff(0, &[]), Err(AllocError::ZeroSize));
        assert_eq!(
            a.malloc_aff_affine(&AffineArrayReq::new(0, 10)),
            Err(AllocError::ZeroSize)
        );
    }

    // ----- free -----

    #[test]
    fn free_and_reuse_irregular() {
        let mut a = alloc(BankSelectPolicy::MinHop);
        let head = a.malloc_aff(64, &[]).unwrap();
        let v = a.malloc_aff(64, &[head]).unwrap();
        let bank = a.bank_of(v);
        a.free_aff(v).unwrap();
        assert_eq!(a.loads()[bank as usize], 1); // only head remains
        let v2 = a.malloc_aff(64, &[head]).unwrap();
        assert_eq!(v2, v, "freed chunk must be reused");
        assert_eq!(a.stats().freelist_hits, 1);
    }

    #[test]
    fn coalescing_reuses_lowest_address_first() {
        let mut a = hybrid();
        a.set_coalescing(true);
        // One bank keeps every placement on a single (interleave, bank)
        // free list, so the list's ordering is directly observable.
        a.restrict_banks(&[3]).unwrap();
        let x = a.malloc_aff(4096, &[]).unwrap();
        let y = a.malloc_aff(4096, &[]).unwrap();
        let z = a.malloc_aff(4096, &[]).unwrap();
        a.free_aff(z).unwrap();
        a.free_aff(x).unwrap();
        a.free_aff(y).unwrap();
        // Freeing x and y completes their bank cycles (every other chunk
        // was donated-free), so both promote into one coalesced affine
        // block. z's cycle never fully materialized, so z stays on the
        // irregular list. Reuse order is therefore: the residual list
        // chunk first, then demotion from the promoted span — and
        // demotion hands chunks back lowest-address-first (legacy LIFO
        // would replay the free order z, x, y with no promotion at all).
        let r1 = a.malloc_aff(4096, &[]).unwrap();
        assert_eq!(r1, z, "residual list chunk must be reused first");
        let r2 = a.malloc_aff(4096, &[]).unwrap();
        assert_eq!(r2, x, "demotion must start at the lowest address");
        let r3 = a.malloc_aff(4096, &[]).unwrap();
        assert_eq!(r3, y, "demotion must walk the span upward");
        assert!(a.stats().freelist_hits >= 3);
    }

    #[test]
    fn double_free_is_rejected() {
        let mut a = hybrid();
        let v = a.malloc_aff(64, &[]).unwrap();
        a.free_aff(v).unwrap();
        assert!(matches!(
            a.free_aff(v),
            Err(AllocError::UnknownAddress { .. })
        ));
    }

    #[test]
    fn free_affine_array_recycles_block() {
        let mut a = hybrid();
        let req = AffineArrayReq::new(4, 4096);
        let v1 = a.malloc_aff_affine(&req).unwrap();
        a.free_aff(v1).unwrap();
        let v2 = a.malloc_aff_affine(&req).unwrap();
        assert_eq!(v1, v2, "freed affine block must be reused");
    }

    #[test]
    fn free_unknown_address_errors() {
        let mut a = hybrid();
        assert!(matches!(
            a.free_aff(VAddr(0x99)),
            Err(AllocError::UnknownAddress { .. })
        ));
    }

    #[test]
    fn residency_tracks_live_bytes() {
        let mut a = alloc(BankSelectPolicy::MinHop);
        let v = a.malloc_aff(64, &[]).unwrap();
        let bank = a.bank_of(v) as usize;
        assert_eq!(a.resident_per_bank()[bank], 64);
        a.free_aff(v).unwrap();
        assert_eq!(a.resident_per_bank()[bank], 0);
    }

    #[test]
    fn npot_interleave_realizes_3_to_1_ratios() {
        // B[i] aligns to A[i/3] (p=1, q=3): Eq 3 gives intrlv_B = 3 x 64 =
        // 192 B — unrealizable on the power-of-two machine (fallback), but
        // exact with non-power-of-two interleaves enabled (§4.1 future work).
        let req_a = AffineArrayReq::new(4, 3 * 4096);
        let mk_b = |a| AffineArrayReq::new(4, 3 * 4096).align_to(a).align_ratio(1, 3, 0);

        let mut pow2 = hybrid();
        let a = pow2.malloc_aff_affine(&req_a).unwrap();
        pow2.malloc_aff_affine(&mk_b(a)).unwrap();
        assert_eq!(pow2.stats().fallback, 1, "192 B is invalid on the stock machine");

        let mut cfg = MachineConfig::paper_default();
        cfg.allow_npot_interleave = true;
        let mut npot =
            AffinityAllocator::new(cfg, BankSelectPolicy::paper_default());
        let a = npot.malloc_aff_affine(&req_a).unwrap();
        let b = npot.malloc_aff_affine(&mk_b(a)).unwrap();
        assert_eq!(npot.stats().fallback, 0);
        assert_eq!(npot.affine_layout(b), Some((192, 0)));
        // B[i] shares a bank with A[i/3].
        for i in [0u64, 1, 47, 48, 1000, 3 * 4096 - 1] {
            assert_eq!(
                npot.bank_of(b + i * 4),
                npot.bank_of(a + (i / 3) * 4),
                "element {i}"
            );
        }
    }

    #[test]
    fn realloc_moves_toward_new_affinity() {
        let mut a = alloc(BankSelectPolicy::MinHop);
        // Two anchors on distinct banks.
        let anchor_a = a.malloc_aff(64, &[]).unwrap();
        let far_bank = (a.bank_of(anchor_a) + 32) % 64;
        // Manufacture an anchor on a far bank via Lnr-style manual placement:
        // allocate until one lands there.
        let mut anchor_b = anchor_a;
        let mut lnr = alloc(BankSelectPolicy::Lnr);
        for _ in 0..64 {
            let v = lnr.malloc_aff(64, &[]).unwrap();
            if lnr.bank_of(v) == far_bank {
                anchor_b = v;
                break;
            }
        }
        let _ = anchor_b;
        // Object starts near anchor_a.
        let obj = a.malloc_aff(64, &[anchor_a]).unwrap();
        assert_eq!(a.bank_of(obj), a.bank_of(anchor_a));
        a.memory_mut().write_u64(obj, 0xFEED);
        // Build a far target inside the same allocator: a partitioned array
        // gives us an address on every bank.
        let arr = a
            .malloc_aff_affine(&AffineArrayReq::new(64, 64 * 16).partitioned())
            .unwrap();
        let far_elem = arr + u64::from(far_bank) * 16 * 64;
        assert_eq!(a.bank_of(far_elem), far_bank);
        // Re-place with affinity to the far element.
        let moved = a.realloc_aff(obj, &[far_elem]).unwrap();
        assert_ne!(moved, obj, "object must move");
        assert_eq!(a.bank_of(moved), far_bank);
        assert_eq!(a.memory().read_u64(moved), 0xFEED, "contents move too");
        // The old address is gone.
        assert!(matches!(
            a.free_aff(obj),
            Err(AllocError::UnknownAddress { .. })
        ));
        a.free_aff(moved).unwrap();
    }

    #[test]
    fn realloc_same_bank_is_a_no_op() {
        let mut a = alloc(BankSelectPolicy::MinHop);
        let anchor = a.malloc_aff(64, &[]).unwrap();
        let obj = a.malloc_aff(64, &[anchor]).unwrap();
        let same = a.realloc_aff(obj, &[anchor]).unwrap();
        assert_eq!(same, obj);
    }

    #[test]
    fn realloc_rejects_unknown_and_affine_addresses() {
        let mut a = hybrid();
        assert!(matches!(
            a.realloc_aff(VAddr(0x123), &[]),
            Err(AllocError::UnknownAddress { .. })
        ));
        let arr = a.malloc_aff_affine(&AffineArrayReq::new(4, 64)).unwrap();
        assert!(matches!(
            a.realloc_aff(arr, &[]),
            Err(AllocError::UnknownAddress { .. })
        ));
    }

    #[test]
    fn fragmentation_report_tracks_free_lists() {
        let mut a = alloc(BankSelectPolicy::MinHop);
        assert_eq!(a.fragmentation().fragmentation_ratio(), 0.0);
        let anchor = a.malloc_aff(64, &[]).unwrap();
        let objs: Vec<_> = (0..10)
            .map(|_| a.malloc_aff(64, &[anchor]).unwrap())
            .collect();
        for &o in &objs {
            a.free_aff(o).unwrap();
        }
        let frag = a.fragmentation();
        // The ten freed chunks plus the chunks Min-Hop's cursor skipped
        // while cycling back to the anchor's bank (chunk donation).
        assert!(frag.free_bytes >= 640, "got {}", frag.free_bytes);
        assert_eq!(frag.live_bytes, 64, "only the anchor survives");
        assert!(frag.fragmentation_ratio() > 0.5);
        assert_eq!(frag.free_bytes_per_interleave.len(), 1);
        assert_eq!(frag.free_bytes_per_interleave[0].0, 64);
    }

    #[test]
    fn tail_reclamation_shrinks_pools() {
        let mut a = alloc(BankSelectPolicy::MinHop);
        let anchor = a.malloc_aff(64, &[]).unwrap();
        let objs: Vec<_> = (0..10)
            .map(|_| a.malloc_aff(64, &[anchor]).unwrap())
            .collect();
        // Free everything allocated after the anchor: the pool tail is free.
        for &o in objs.iter().rev() {
            a.free_aff(o).unwrap();
        }
        let reclaimed = a.reclaim_pool_tails();
        // Everything above the anchor — the freed objects plus the chunks
        // the cursor donated while cycling — is a free tail.
        assert!(reclaimed >= 640, "got {reclaimed}");
        assert_eq!(
            a.fragmentation().free_bytes,
            0,
            "full tail reclamation leaves no free-listed chunks"
        );
        // And the space is immediately reusable at the same bank.
        let again = a.malloc_aff(64, &[anchor]).unwrap();
        assert_eq!(a.bank_of(again), a.bank_of(objs[0]));
        assert!(again <= objs[0], "cursor restarted at or before the old spot");
    }

    // ----- faults & graceful degradation -----

    use aff_sim_core::fault::FaultPlan;

    fn faulty(plan: FaultPlan, policy: BankSelectPolicy) -> AffinityAllocator {
        AffinityAllocator::new(
            MachineConfig::paper_default().with_faults(plan),
            policy,
        )
    }

    #[test]
    fn failed_banks_are_never_selected() {
        let plan = FaultPlan::none().fail_bank(0).fail_bank(9).fail_bank(63);
        for policy in [
            BankSelectPolicy::Rnd,
            BankSelectPolicy::Lnr,
            BankSelectPolicy::MinHop,
            BankSelectPolicy::paper_default(),
        ] {
            let mut a = faulty(plan.clone(), policy);
            let anchor = a.malloc_aff(64, &[]).unwrap();
            for _ in 0..200 {
                let v = a.malloc_aff(64, &[anchor]).unwrap();
                let b = a.bank_of(v);
                assert!(
                    ![0, 9, 63].contains(&b),
                    "{policy:?} placed on failed bank {b}"
                );
            }
            assert_eq!(a.degradation().excluded_banks, 3);
        }
    }

    #[test]
    fn live_replan_excludes_then_readmits_a_bank() {
        // The mid-run analogue of `failed_banks_are_never_selected`: the
        // bank dies *after* the allocator was built, via apply_fault_plan.
        let mut a = alloc(BankSelectPolicy::MinHop);
        let anchor = a.malloc_aff(64, &[]).unwrap();
        let home = a.bank_of(anchor);
        // Healthy machine: affinity keeps children on the anchor's bank.
        let v = a.malloc_aff(64, &[anchor]).unwrap();
        assert_eq!(a.bank_of(v), home);
        // Epoch 1: the home bank dies. Subsequent argmins must avoid it.
        a.apply_fault_plan(&FaultPlan::none().fail_bank(home));
        assert_eq!(a.degradation().excluded_banks, 1);
        for _ in 0..50 {
            let v = a.malloc_aff(64, &[anchor]).unwrap();
            assert_ne!(a.bank_of(v), home, "placed on a bank that died live");
        }
        // Epoch 2: repair. The bank is eligible again, and Min-Hop's pure
        // affinity immediately returns to it.
        a.apply_fault_plan(&FaultPlan::none());
        assert_eq!(a.degradation().excluded_banks, 0);
        let v = a.malloc_aff(64, &[anchor]).unwrap();
        assert_eq!(a.bank_of(v), home);
    }

    #[test]
    fn live_replan_slowdown_steers_hybrid_load() {
        // Slowing a bank via a live re-plan must repel Hybrid the same way a
        // static slow plan does (select_bank reads the *active* plan).
        let mut a = alloc(BankSelectPolicy::Hybrid { h: 5.0 });
        let anchor = a.malloc_aff(64, &[]).unwrap();
        let home = a.bank_of(anchor);
        let count_on_home = |a: &mut AffinityAllocator| {
            (0..100)
                .filter(|_| {
                    let v = a.malloc_aff(64, &[anchor]).unwrap();
                    a.bank_of(v) == home
                })
                .count()
        };
        let before = count_on_home(&mut a);
        a.apply_fault_plan(&FaultPlan::none().slow_bank(home, 8));
        let after = count_on_home(&mut a);
        assert!(
            after < before,
            "live slowdown must repel allocations: {after} >= {before}"
        );
    }

    #[test]
    fn min_hop_skips_a_dead_affinity_target() {
        // The anchor's own bank dies *before* the anchor's neighbors are
        // chosen: Min-Hop must pick the nearest healthy bank instead of the
        // affinity bank itself.
        let mut healthy = alloc(BankSelectPolicy::MinHop);
        let anchor = healthy.malloc_aff(64, &[]).unwrap();
        let home = healthy.bank_of(anchor);
        let mut a = faulty(FaultPlan::none().fail_bank(home), BankSelectPolicy::MinHop);
        let anchor2 = a.malloc_aff(64, &[]).unwrap();
        assert_ne!(a.bank_of(anchor2), home);
    }

    #[test]
    fn slowed_bank_repels_hybrid_allocations() {
        // With the anchor's bank slowed 8x, Hybrid's load term inflates and
        // allocations spill off it far sooner than on a healthy machine.
        let spill_count = |plan: FaultPlan| {
            let mut a = faulty(plan, BankSelectPolicy::Hybrid { h: 5.0 });
            let anchor = a.malloc_aff(64, &[]).unwrap();
            let home = a.bank_of(anchor);
            let mut on_home = 0u32;
            for _ in 0..200 {
                let v = a.malloc_aff(64, &[anchor]).unwrap();
                if a.bank_of(v) == home {
                    on_home += 1;
                }
            }
            on_home
        };
        let healthy = spill_count(FaultPlan::none());
        // Bank 0 is where the first MinHop-ish anchor lands on a fresh
        // allocator (lowest-id tie-break).
        let slowed = spill_count(FaultPlan::none().slow_bank(0, 8));
        assert!(
            slowed < healthy,
            "slowdown must repel allocations: {slowed} >= {healthy}"
        );
    }

    #[test]
    fn pool_cap_degrades_affine_to_heap_and_errors_irregular() {
        // Cap pools at one page: the first affine array fits nothing beyond
        // a page, so the chain walks derived -> coarser -> heap without
        // panicking; irregular allocation reports the pool error.
        let plan = FaultPlan::none().cap_pool_reserve(PAGE_CAP);
        let mut a = faulty(plan, BankSelectPolicy::paper_default());
        let before = a.stats().fallback;
        let va = a
            .malloc_aff_affine(&AffineArrayReq::new(4, 1 << 20)) // 4 MiB
            .unwrap();
        assert!(va.raw() >= aff_mem::space::HEAP_VA_BASE && va.raw() < (1 << 40));
        assert!(a.stats().fallback > before);
        assert!(a.degradation().fallback_allocations > 0);
        // Irregular allocations have no heap fallback by design: they must
        // surface the pool failure as an Err, never abort.
        let mut err = None;
        for _ in 0..10_000 {
            match a.malloc_aff(4096, &[]) {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(
            matches!(err, Some(AllocError::Pool(_))),
            "exhaustion must surface as Err, got {err:?}"
        );
    }

    const PAGE_CAP: u64 = 4096;

    #[test]
    fn healthy_machine_reports_zero_degradation() {
        let mut a = hybrid();
        let anchor = a.malloc_aff(64, &[]).unwrap();
        let _ = a.malloc_aff(64, &[anchor]).unwrap();
        let _ = a.malloc_aff_affine(&AffineArrayReq::new(4, 4096)).unwrap();
        assert!(a.degradation().is_zero());
    }

    #[test]
    fn fault_free_placement_is_unchanged_by_empty_plan() {
        let mut plain = hybrid();
        let mut faulted = faulty(FaultPlan::none(), BankSelectPolicy::paper_default());
        let pa = plain.malloc_aff(64, &[]).unwrap();
        let fa = faulted.malloc_aff(64, &[]).unwrap();
        assert_eq!(pa, fa);
        for _ in 0..100 {
            let pv = plain.malloc_aff(64, &[pa]).unwrap();
            let fv = faulted.malloc_aff(64, &[fa]).unwrap();
            assert_eq!(pv, fv, "empty plan must not perturb placement");
        }
    }

    #[test]
    fn fig7_worked_example() {
        // The 2x2-mesh tree of Fig 7: n2 colocates with its parent n5; the
        // load-balance term eventually spills siblings to other banks.
        let mut a = AffinityAllocator::new(
            MachineConfig::tiny_mesh(),
            BankSelectPolicy::Hybrid { h: 1.0 },
        );
        let n5 = a.malloc_aff(64, &[]).unwrap();
        let n2 = a.malloc_aff(64, &[n5]).unwrap();
        assert_eq!(a.bank_of(n2), a.bank_of(n5));
        // Keep allocating children of n5; with H=1 the pile-up spills.
        let mut banks_used = std::collections::HashSet::new();
        for _ in 0..16 {
            let c = a.malloc_aff(64, &[n5]).unwrap();
            banks_used.insert(a.bank_of(c));
        }
        assert!(banks_used.len() > 1, "load balancing must engage");
    }

    #[test]
    fn malloc_hinted_matches_legacy_paths() {
        // Every hint variant must land exactly where the legacy entry point
        // it wraps would have landed (the "thin constructor" contract).
        let mut via_hint = hybrid();
        let mut legacy = hybrid();
        let anchor_h = via_hint.malloc_hinted(64, 1, &AffinityHint::None).unwrap();
        let anchor_l = legacy.malloc_aff(64, &[]).unwrap();
        assert_eq!(anchor_h, anchor_l);
        let irr_h = via_hint
            .malloc_hinted(64, 1, &AffinityHint::Irregular { aff_addrs: vec![anchor_h] })
            .unwrap();
        let irr_l = legacy.malloc_aff(64, &[anchor_l]).unwrap();
        assert_eq!(irr_h, irr_l);
        let part_h = via_hint.malloc_hinted(4, 64 * 1024, &AffinityHint::Partition).unwrap();
        let part_l = legacy
            .malloc_aff_affine(&AffineArrayReq::new(4, 64 * 1024).partitioned())
            .unwrap();
        assert_eq!(part_h, part_l);
        let row = 4096u64;
        let intra_h = via_hint
            .malloc_hinted(4, 64 * row, &AffinityHint::IntraStride { stride: row })
            .unwrap();
        let intra_l = legacy
            .malloc_aff_affine(&AffineArrayReq::new(4, 64 * row).intra_stride(row))
            .unwrap();
        assert_eq!(intra_h, intra_l);
        let al_h = via_hint
            .malloc_hinted(
                4,
                64 * row,
                &AffinityHint::AlignTo { partner: intra_h, p: 1, q: 1, x: 0 },
            )
            .unwrap();
        let al_l = legacy
            .malloc_aff_affine(&AffineArrayReq::new(4, 64 * row).align_to(intra_l))
            .unwrap();
        assert_eq!(al_h, al_l);
        assert_eq!(via_hint.stats(), legacy.stats());
    }

    #[test]
    fn oversized_irregular_hint_subsamples_deterministically() {
        // Build an anchor population bigger than MAX_AFFINITY_ADDRS, then
        // allocate with the whole population as the hint: malloc_aff would
        // reject it, malloc_hinted must subsample and succeed — identically
        // across identically seeded allocators.
        let build = |seed: u64| {
            let mut a = AffinityAllocator::with_seed(
                MachineConfig::paper_default(),
                BankSelectPolicy::paper_default(),
                seed,
            );
            let pop: Vec<VAddr> =
                (0..3 * MAX_AFFINITY_ADDRS).map(|_| a.malloc_aff(64, &[]).unwrap()).collect();
            assert!(matches!(
                a.malloc_aff(64, &pop),
                Err(AllocError::TooManyAffinityAddrs { .. })
            ));
            let hint = AffinityHint::Irregular { aff_addrs: pop };
            let vas: Vec<VAddr> =
                (0..8).map(|_| a.malloc_hinted(64, 1, &hint).unwrap()).collect();
            let banks: Vec<u32> = vas.iter().map(|&v| a.bank_of(v)).collect();
            (vas, banks)
        };
        let (vas_a, banks_a) = build(7);
        let (vas_b, banks_b) = build(7);
        assert_eq!(vas_a, vas_b, "same seed, same placements");
        assert_eq!(banks_a, banks_b);
        // Different seed ⇒ different subsample stream. The *placement* may
        // coincide bank-wise, but across 8 draws at least one should differ;
        // what we pin is that the sample is seed-keyed, not first-N.
        let (vas_c, _) = build(8);
        assert_ne!(vas_a, vas_c, "subsample must be seed-keyed");
    }

    #[test]
    fn subsample_is_not_first_n_truncation() {
        // Population where the first MAX addresses sit on one bank and the
        // rest on far banks: first-N truncation would always pick bank 0's
        // cluster; the seeded sample must (deterministically) reach past it.
        let mut a = hybrid();
        let mut pop = Vec::new();
        for _ in 0..(4 * MAX_AFFINITY_ADDRS) {
            pop.push(a.malloc_aff(64, &[]).unwrap());
        }
        let sampled = a.sample_aff_addrs(&pop);
        assert_eq!(sampled.len(), MAX_AFFINITY_ADDRS);
        assert!(
            sampled.iter().any(|v| !pop[..MAX_AFFINITY_ADDRS].contains(v)),
            "sample must reach beyond the first MAX_AFFINITY_ADDRS entries"
        );
        // Relative order is preserved (a pure subset, not a shuffle).
        let positions: Vec<usize> =
            sampled.iter().map(|v| pop.iter().position(|p| p == v).unwrap()).collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
    }
}

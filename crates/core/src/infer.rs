//! Affinity inference: turn a mined co-access trace into allocator hints —
//! the analysis half of the annotate→profile→infer loop.
//!
//! A profiling run executes a workload with **no annotations** and a
//! [`CoAccessMiner`](aff_sim_core::mine::CoAccessMiner) installed; the
//! resulting [`MinedTrace`] comes here. [`AffinityProfile::infer`] fits the
//! paper's affine alignment relation `B[i] ↔ A[(p/q)·i + x]` (Eq 2) to every
//! co-accessed region pair by least-squares regression over the paired
//! element samples, rationalizes the slope to a small `p/q`, reads the
//! offset `x` off the residual mode, and classifies each region into the
//! unified [`AffinityHint`] vocabulary:
//!
//! * a good affine fit against an earlier-allocated array → `AlignTo`,
//! * a dominant cache-line-spanning residual stride in the fits *against*
//!   this region → `IntraStride` (Fig 8(c): the stencil halo's row stride
//!   surfaces as the residual histogram of the main↔output fit),
//! * a sequentially-unpredictable (non-monotone) dense sweep → `Partition`
//!   (Fig 9: graph property arrays indexed by random vertex ids),
//! * node-granular regions traversed several-per-step or co-touched with a
//!   property array → `Chain` (Fig 10/11: per-node `aff_addrs` affinity,
//!   resolved to concrete predecessor addresses at allocation time),
//! * anything else → `None`.
//!
//! The profile also records the run's compute-vs-traffic ratio and the
//! derived NSC offload-profitability verdict (NMPO-style: a run that moves
//! more bytes than it retires ops wants near-data execution).
//!
//! Everything is deterministic: same trace in, byte-identical profile (and
//! serialized JSON) out.

use crate::api::AffinityHint;
use aff_mem::addr::VAddr;
use aff_sim_core::mine::{MinedTrace, PairSamples, RegionKind};
use serde::{Deserialize, Serialize};

/// Minimum paired samples before a fit is attempted.
const MIN_PAIR_SAMPLES: usize = 24;

/// Minimum fraction of samples whose residual lands within the tolerance
/// band around the fitted offset for an affine fit to count. Uncorrelated
/// pairs scatter their residuals across the whole footprint and die here;
/// a genuinely affine pair with a minority of noisy samples survives.
const MIN_INLIER_FRAC: f64 = 0.6;

/// Largest alignment-ratio denominator tried when rationalizing the fitted
/// slope (the paper's examples never exceed small integer ratios).
const MAX_RATIO_DEN: u64 = 8;

/// Maximum relative error between the fitted slope and its rationalization.
const SLOPE_TOL: f64 = 0.02;

/// A dense sweep whose first-touch sequence is monotone less often than this
/// is treated as randomly indexed → `Partition`.
const PARTITION_MONOTONICITY: f64 = 0.85;

/// Minimum observed steps before any per-region signal is trusted.
const MIN_STEPS: u64 = 16;

/// Node regions traversed at least this many distinct nodes per step are
/// chains even without a co-touched partner (list/tree/hash traversals).
const CHAIN_TOUCHES_PER_STEP: f64 = 1.5;

/// A residual stride must span at least one cache line to matter for bank
/// placement (smaller strides land in the same line regardless).
const LINE_SPAN_BYTES: u64 = 64;

/// Compute-vs-traffic threshold for the offload verdict: moving at least
/// one payload byte per retired op means the run is movement-bound and NSC
/// offload is profitable.
const OFFLOAD_BYTES_PER_OP: f64 = 1.0;

/// One region's inferred hint, in region-ordinal space (ordinals are
/// allocation order, the stable cross-run identity).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InferredHint {
    /// No exploitable structure found.
    None,
    /// Affine alignment to an earlier-allocated region (Eq 2).
    AlignTo {
        /// Partner region ordinal (always lower than this region's).
        partner: u32,
        /// Ratio numerator.
        p: u64,
        /// Ratio denominator.
        q: u64,
        /// Offset in partner elements (residual mode, clamped at zero).
        x: u64,
    },
    /// Intra-array affinity at this element stride (Fig 8(c)).
    IntraStride {
        /// The dominant co-access stride.
        stride: u64,
    },
    /// Spread once across all banks (Fig 9).
    Partition,
    /// Node-granular chain affinity: co-locate each node with its traversal
    /// predecessor (Fig 10/11). Resolved to concrete `aff_addrs` by the
    /// allocation site via [`AffinityProfile::hint_for`].
    Chain,
}

impl InferredHint {
    /// Stable lower-case label (serialization, reports).
    pub fn label(&self) -> &'static str {
        match self {
            InferredHint::None => "none",
            InferredHint::AlignTo { .. } => "align_to",
            InferredHint::IntraStride { .. } => "intra_stride",
            InferredHint::Partition => "partition",
            InferredHint::Chain => "chain",
        }
    }
}

/// The inferred hint for one region, with its supporting evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionHint {
    /// Region ordinal (allocation order).
    pub region: u32,
    /// Region kind label (`"array"` or `"nodes"`).
    pub kind: String,
    /// The inferred hint.
    pub hint: InferredHint,
    /// Signal strength in `[0, 1]`: fit correlation for `AlignTo` /
    /// `IntraStride`, non-monotonicity for `Partition`, co-touch or
    /// multi-touch rate for `Chain`.
    pub confidence: f64,
}

/// The serializable output of one profiling run: per-region hints plus the
/// NSC offload verdict. Feed it back into a replay run via
/// [`hint_for`](Self::hint_for) in place of hand annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffinityProfile {
    /// Per-region hints, ordered by region ordinal.
    pub hints: Vec<RegionHint>,
    /// NoC payload bytes moved per op retired (core + stream engine).
    pub traffic_bytes_per_op: f64,
    /// Whether the compute-vs-traffic ratio says NSC offload pays off.
    pub offload_nsc: bool,
    /// Steps observed by the miner (provenance).
    pub steps: u64,
    /// Touch events observed by the miner (provenance).
    pub touch_events: u64,
}

/// Robust affine fit of one region pair, already rationalized. `support` is
/// the inlier fraction — the fit's confidence.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AffineFit {
    p: u64,
    q: u64,
    x: i64,
    support: f64,
    samples: usize,
}

/// Robust slope of `a` as a function of `b`: the median of wide-baseline
/// secant slopes over the `b`-sorted samples (a Theil–Sen variant using
/// half-span baselines, so a minority of displaced samples and the stencil
/// halo's bounded residuals barely move the estimate, where least squares
/// would be dragged off by a single far outlier).
fn robust_slope(samples: &[(u64, u64)]) -> Option<f64> {
    let mut pts: Vec<(f64, f64)> =
        samples.iter().map(|&(a, b)| (b as f64, a as f64)).collect();
    pts.sort_by(|u, v| u.partial_cmp(v).expect("finite"));
    let n = pts.len();
    let m = n / 2;
    if m == 0 {
        return None;
    }
    let mut slopes: Vec<f64> = Vec::with_capacity(n - m);
    for k in 0..n - m {
        let db = pts[k + m].0 - pts[k].0;
        if db > f64::EPSILON {
            slopes.push((pts[k + m].1 - pts[k].1) / db);
        }
    }
    if slopes.is_empty() {
        return None;
    }
    slopes.sort_by(|u, v| u.partial_cmp(v).expect("finite"));
    Some(slopes[slopes.len() / 2])
}

/// Rationalize `slope` to `p/q` with `q ≤ MAX_RATIO_DEN`, preferring the
/// smallest denominator that lands within [`SLOPE_TOL`].
fn rationalize(slope: f64) -> Option<(u64, u64)> {
    if !slope.is_finite() || slope <= 0.0 {
        return None;
    }
    for q in 1..=MAX_RATIO_DEN {
        let p = (slope * q as f64).round();
        if p < 1.0 {
            continue;
        }
        let approx = p / q as f64;
        if (approx - slope).abs() <= SLOPE_TOL * slope.max(1.0) {
            return Some((p as u64, q));
        }
    }
    None
}

/// Mode of the integer residuals `a - (p·b)/q`, ties broken toward the
/// value closest to zero (then the smaller value) — so the exact-alignment
/// offset 0 wins whenever it is among the most frequent, matching the
/// annotated convention of aligning bases and letting the halo ride.
fn residual_mode(samples: &[(u64, u64)], p: u64, q: u64) -> (i64, usize, Vec<(i64, usize)>) {
    let mut counts: std::collections::BTreeMap<i64, usize> = std::collections::BTreeMap::new();
    for &(a, b) in samples {
        let r = a as i64 - ((p as i128 * b as i128) / q as i128) as i64;
        *counts.entry(r).or_insert(0) += 1;
    }
    let mut best = (0i64, 0usize);
    for (&r, &c) in &counts {
        let better = c > best.1
            || (c == best.1 && r.abs() < best.0.abs())
            || (c == best.1 && r.abs() == best.0.abs() && r < best.0);
        if better || best.1 == 0 {
            best = (r, c);
        }
    }
    let hist: Vec<(i64, usize)> = counts.into_iter().collect();
    (best.0, best.1, hist)
}

/// Fit pair samples `(elem_a, elem_b)` as `a = (p/q)·b + x`, returning the
/// fit plus the residual histogram (the `IntraStride` raw material).
///
/// The inlier band scales with the partner's observed footprint: a stencil
/// halo (residuals within ±row of the mode) stays inside it, while an
/// uncorrelated pair — residuals spread across the whole footprint — falls
/// below [`MIN_INLIER_FRAC`] and is rejected.
fn fit_pair(samples: &[(u64, u64)]) -> Option<(AffineFit, Vec<(i64, usize)>)> {
    if samples.len() < MIN_PAIR_SAMPLES {
        return None;
    }
    let slope = robust_slope(samples)?;
    let (p, q) = rationalize(slope)?;
    let (x, _, hist) = residual_mode(samples, p, q);
    let span_a = {
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for &(a, _) in samples {
            lo = lo.min(a);
            hi = hi.max(a);
        }
        hi - lo
    };
    let tol = (span_a / 16).max(4) as i64;
    let inliers: usize = hist
        .iter()
        .filter(|&&(r, _)| (r - x).abs() <= tol)
        .map(|&(_, c)| c)
        .sum();
    let support = inliers as f64 / samples.len() as f64;
    if support < MIN_INLIER_FRAC {
        return None;
    }
    Some((
        AffineFit {
            p,
            q,
            x,
            support,
            samples: samples.len(),
        },
        hist,
    ))
}

/// The dominant cache-line-spanning |residual| of a fitted pair: the
/// intra-array stride candidate the stencil halo leaves behind. Ties go to
/// the smallest stride (a 3-D kernel's row beats its plane, matching the
/// annotated `intra_stride(row)` convention).
fn dominant_stride(hist: &[(i64, usize)], elem_size: u64) -> Option<(u64, usize)> {
    let mut by_abs: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    for &(r, c) in hist {
        let s = r.unsigned_abs();
        if s > 0 && s.saturating_mul(elem_size.max(1)) >= LINE_SPAN_BYTES {
            *by_abs.entry(s).or_insert(0) += c;
        }
    }
    // BTreeMap iterates ascending, and `>` keeps the first (smallest) stride
    // on ties.
    let mut best: Option<(u64, usize)> = None;
    for (&s, &c) in &by_abs {
        if best.is_none_or(|(_, bc)| c > bc) {
            best = Some((s, c));
        }
    }
    best
}

impl AffinityProfile {
    /// Infer a profile from a mined trace. Deterministic: regions are
    /// processed in ordinal order and every tie-break is total.
    pub fn infer(trace: &MinedTrace) -> Self {
        let mut hints = Vec::with_capacity(trace.regions.len());
        for r in &trace.regions {
            let (hint, confidence) = match r.kind {
                RegionKind::Array => Self::infer_array(trace, r.region),
                RegionKind::Nodes => Self::infer_nodes(trace, r.region),
            };
            hints.push(RegionHint {
                region: r.region,
                kind: r.kind.label().to_string(),
                hint,
                confidence,
            });
        }
        let ops = (trace.work.core_ops + trace.work.se_ops).max(1) as f64;
        let traffic_bytes_per_op = trace.work.traffic_bytes as f64 / ops;
        AffinityProfile {
            hints,
            traffic_bytes_per_op,
            offload_nsc: traffic_bytes_per_op >= OFFLOAD_BYTES_PER_OP,
            steps: trace.steps,
            touch_events: trace.touch_events,
        }
    }

    /// Array classification: `AlignTo` an earlier region if any pair fits,
    /// else `Partition` on non-monotone sweeps, else `IntraStride` from the
    /// residual histogram of fits *against* this region, else `None`.
    fn infer_array(trace: &MinedTrace, region: u32) -> (InferredHint, f64) {
        let stats = trace.region(region).expect("region exists");
        if stats.steps < MIN_STEPS {
            return (InferredHint::None, 0.0);
        }
        // Earlier-allocated partners only: the replay run allocates in
        // ordinal order, so a partner must already exist at apply time.
        let mut best: Option<(u32, AffineFit)> = None;
        for pair in &trace.pairs {
            let (partner, samples) = match pair {
                PairSamples { a, b, samples, .. } if *b == region && *a < region => {
                    // Samples are (elem_a, elem_b) with a < b; we fit
                    // this region's element as a function of... the partner
                    // holds the *a* slot, so solve partner = f(region) and
                    // invert: a = (p/q)·b + x is exactly "this region's
                    // element b maps to partner element (p/q)·b + x" — Eq 2
                    // with `align_to = partner` as-is.
                    (*a, samples)
                }
                _ => continue,
            };
            if trace
                .region(partner)
                .is_none_or(|s| s.kind != RegionKind::Array)
            {
                continue;
            }
            if let Some((fit, _)) = fit_pair(samples) {
                let better = match &best {
                    None => true,
                    // Lowest partner ordinal wins (the annotated convention
                    // aligns everything to the first-allocated main array),
                    // then higher support.
                    Some((bp, bf)) => {
                        partner < *bp || (partner == *bp && fit.samples > bf.samples)
                    }
                };
                if better {
                    best = Some((partner, fit));
                }
            }
        }
        if let Some((partner, fit)) = best {
            return (
                InferredHint::AlignTo {
                    partner,
                    p: fit.p,
                    q: fit.q,
                    x: fit.x.max(0) as u64,
                },
                fit.support,
            );
        }
        if stats.monotonicity() < PARTITION_MONOTONICITY {
            return (InferredHint::Partition, 1.0 - stats.monotonicity());
        }
        // No earlier partner (this is the first-allocated array): look for a
        // line-spanning stride in the residuals of fits where *later*
        // regions align to this one — the stencil halo.
        let mut stride_best: Option<(u64, usize, f64)> = None;
        for pair in &trace.pairs {
            if pair.a != region {
                continue;
            }
            let Some((fit, hist)) = fit_pair(&pair.samples) else {
                continue;
            };
            if let Some((stride, count)) = dominant_stride(&hist, stats.elem_size) {
                let better = stride_best
                    .is_none_or(|(bs, bc, _)| count > bc || (count == bc && stride < bs));
                if better {
                    stride_best = Some((stride, count, fit.support));
                }
            }
        }
        if let Some((stride, _, support)) = stride_best {
            return (InferredHint::IntraStride { stride }, support);
        }
        (InferredHint::None, 0.0)
    }

    /// Node classification: chains traverse several nodes per step, or ride
    /// along with a co-touched property array (linked CSR).
    fn infer_nodes(trace: &MinedTrace, region: u32) -> (InferredHint, f64) {
        let stats = trace.region(region).expect("region exists");
        if stats.steps < MIN_STEPS {
            return (InferredHint::None, 0.0);
        }
        let co_rate = stats.co_touch_steps as f64 / stats.steps as f64;
        let tps = stats.touches_per_step();
        if tps >= CHAIN_TOUCHES_PER_STEP {
            return (InferredHint::Chain, (tps / 4.0).clamp(0.25, 1.0));
        }
        if co_rate > 0.5 {
            return (InferredHint::Chain, co_rate);
        }
        (InferredHint::None, 0.0)
    }

    /// The hint for region `region`, resolved into the allocator's unified
    /// vocabulary — the profile's only output type, shared with hand
    /// annotations.
    ///
    /// `base_of` maps a partner region ordinal to its live base address in
    /// the replay run (allocation order makes earlier regions resolvable).
    /// `neighbors` supplies the concrete per-node affinity set for `Chain`
    /// regions (the traversal predecessor at each allocation site); it is
    /// ignored for array-shaped hints.
    pub fn hint_for(
        &self,
        region: u32,
        base_of: impl Fn(u32) -> Option<VAddr>,
        neighbors: &[VAddr],
    ) -> AffinityHint {
        let Some(rh) = self.hints.iter().find(|h| h.region == region) else {
            return AffinityHint::None;
        };
        match rh.hint {
            InferredHint::None => AffinityHint::None,
            InferredHint::AlignTo { partner, p, q, x } => match base_of(partner) {
                Some(base) => AffinityHint::AlignTo {
                    partner: base,
                    p,
                    q,
                    x,
                },
                // An unresolvable partner degrades to no hint rather than
                // failing the allocation.
                None => AffinityHint::None,
            },
            InferredHint::IntraStride { stride } => AffinityHint::IntraStride { stride },
            InferredHint::Partition => AffinityHint::Partition,
            InferredHint::Chain => AffinityHint::Irregular {
                aff_addrs: neighbors.to_vec(),
            },
        }
    }

    /// The raw inferred hint for `region`, if any.
    pub fn region_hint(&self, region: u32) -> Option<&RegionHint> {
        self.hints.iter().find(|h| h.region == region)
    }

    /// Number of regions with a non-`None` hint (stamped into the metrics
    /// sidecar as `inferred_hints`).
    pub fn hint_count(&self) -> u64 {
        self.hints.iter().filter(|h| h.hint != InferredHint::None).count() as u64
    }

    /// Serialize to a compact, deterministic JSON document (hand-rolled —
    /// the workspace carries no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.hints.len() * 96);
        s.push_str("{\"schema\":\"aff-profile/v1\",\"hints\":[");
        for (i, h) in self.hints.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"region\":{},\"kind\":\"{}\",\"hint\":\"{}\"",
                h.region,
                h.kind,
                h.hint.label()
            ));
            match h.hint {
                InferredHint::AlignTo { partner, p, q, x } => {
                    s.push_str(&format!(
                        ",\"partner\":{partner},\"p\":{p},\"q\":{q},\"x\":{x}"
                    ));
                }
                InferredHint::IntraStride { stride } => {
                    s.push_str(&format!(",\"stride\":{stride}"));
                }
                _ => {}
            }
            s.push_str(&format!(",\"confidence\":{:.6}}}", h.confidence));
        }
        s.push_str(&format!(
            "],\"traffic_bytes_per_op\":{:.6},\"offload_nsc\":{},\"steps\":{},\"touch_events\":{}}}",
            self.traffic_bytes_per_op, self.offload_nsc, self.steps, self.touch_events
        ));
        s
    }

    /// Parse a document produced by [`to_json`](Self::to_json). Returns
    /// `None` on any structural mismatch (unknown schema, missing field,
    /// malformed number) — the caller treats that as "no profile".
    pub fn from_json(text: &str) -> Option<Self> {
        let schema = json_str_field(text, "schema")?;
        if schema != "aff-profile/v1" {
            return None;
        }
        let hints_src = json_array_field(text, "hints")?;
        let mut hints = Vec::new();
        for obj in json_objects(hints_src) {
            let region = json_u64_field(obj, "region")? as u32;
            let kind = json_str_field(obj, "kind")?.to_string();
            let label = json_str_field(obj, "hint")?;
            let hint = match label {
                "none" => InferredHint::None,
                "align_to" => InferredHint::AlignTo {
                    partner: json_u64_field(obj, "partner")? as u32,
                    p: json_u64_field(obj, "p")?,
                    q: json_u64_field(obj, "q")?,
                    x: json_u64_field(obj, "x")?,
                },
                "intra_stride" => InferredHint::IntraStride {
                    stride: json_u64_field(obj, "stride")?,
                },
                "partition" => InferredHint::Partition,
                "chain" => InferredHint::Chain,
                _ => return None,
            };
            let confidence = json_f64_field(obj, "confidence")?;
            hints.push(RegionHint {
                region,
                kind,
                hint,
                confidence,
            });
        }
        Some(AffinityProfile {
            hints,
            traffic_bytes_per_op: json_f64_field(text, "traffic_bytes_per_op")?,
            offload_nsc: json_bool_field(text, "offload_nsc")?,
            steps: json_u64_field(text, "steps")?,
            touch_events: json_u64_field(text, "touch_events")?,
        })
    }
}

// --- Minimal field extractors for the documents `to_json` emits. Not a
// --- general JSON parser: they rely on the emitter's canonical layout
// --- (no escapes inside strings, no nested arrays inside hint objects).

fn json_field_start<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = src.find(&needle)?;
    Some(&src[at + needle.len()..])
}

fn json_str_field<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let rest = json_field_start(src, key)?;
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn json_num_slice<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let rest = json_field_start(src, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-' && c != 'e' && c != '+')
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

fn json_u64_field(src: &str, key: &str) -> Option<u64> {
    json_num_slice(src, key)?.parse().ok()
}

fn json_f64_field(src: &str, key: &str) -> Option<f64> {
    json_num_slice(src, key)?.parse().ok()
}

fn json_bool_field(src: &str, key: &str) -> Option<bool> {
    let rest = json_field_start(src, key)?;
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// The bracketed body of `"key":[...]` (flat arrays of flat objects only).
fn json_array_field<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let rest = json_field_start(src, key)?;
    let rest = rest.strip_prefix('[')?;
    let end = rest.find(']')?;
    Some(&rest[..end])
}

/// Iterate the `{...}` objects of a flat array body.
fn json_objects(body: &str) -> impl Iterator<Item = &str> {
    let mut rest = body;
    std::iter::from_fn(move || {
        let start = rest.find('{')?;
        let end = rest[start..].find('}')? + start;
        let obj = &rest[start..=end];
        rest = &rest[end + 1..];
        Some(obj)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aff_sim_core::mine::CoAccessMiner;
    use aff_sim_core::trace::{Event, Recorder};

    fn touch(region: u32, elem: u64, step: u64) -> Event {
        Event::ProfileTouch { region, elem, step }
    }

    /// Plant `a = (p/q)·b + x` exactly and recover it exactly.
    #[test]
    fn exact_affine_relation_recovered() {
        let mut m = CoAccessMiner::new();
        m.register_region(0, RegionKind::Array, 4, 4096);
        m.register_region(1, RegionKind::Array, 8, 2048);
        for i in 0..200u64 {
            let b = i * 2; // keep (3/2)·b integral
            m.record(&touch(1, b, i));
            m.record(&touch(0, 3 * b / 2 + 5, i));
        }
        let profile = AffinityProfile::infer(&m.finish());
        let h1 = profile.region_hint(1).expect("region 1 hinted");
        assert_eq!(
            h1.hint,
            InferredHint::AlignTo {
                partner: 0,
                p: 3,
                q: 2,
                x: 5
            },
            "exact p/q/x recovery"
        );
        assert!(h1.confidence > 0.99);
    }

    /// Identity alignment with a stencil halo: slope 1, x mode 0, and the
    /// halo's row stride shows up as the first region's IntraStride.
    #[test]
    fn stencil_halo_yields_align_and_intra_stride() {
        let row = 64u64;
        let mut m = CoAccessMiner::new();
        m.register_region(0, RegionKind::Array, 4, row * row);
        m.register_region(1, RegionKind::Array, 4, row * row);
        for s in 0..200u64 {
            let i = row + 1 + s * 7; // stay off the borders
            for off in [-(row as i64), -1, 0, 1, row as i64] {
                m.record(&touch(0, (i as i64 + off) as u64, s));
            }
            m.record(&touch(1, i, s));
        }
        let profile = AffinityProfile::infer(&m.finish());
        assert_eq!(
            profile.region_hint(1).expect("out").hint,
            InferredHint::AlignTo {
                partner: 0,
                p: 1,
                q: 1,
                x: 0
            },
            "halo residuals must not displace the x = 0 mode"
        );
        assert_eq!(
            profile.region_hint(0).expect("main").hint,
            InferredHint::IntraStride { stride: row },
            "the line-spanning residual is the row stride"
        );
        assert_eq!(profile.hint_count(), 2);
    }

    /// Noise tolerance: corrupt a minority of samples; p/q/x still recover.
    #[test]
    fn noisy_relation_recovered_within_tolerance() {
        let mut m = CoAccessMiner::new();
        m.register_region(0, RegionKind::Array, 4, 4096);
        m.register_region(1, RegionKind::Array, 4, 4096);
        for i in 0..300u64 {
            m.record(&touch(1, i, i));
            // Every 8th sample is displaced by an unrelated scatter.
            let a = if i % 8 == 0 { (i * 37 + 11) % 4096 } else { i + 3 };
            m.record(&touch(0, a, i));
        }
        let profile = AffinityProfile::infer(&m.finish());
        match profile.region_hint(1).expect("region 1").hint {
            InferredHint::AlignTo { partner, p, q, x } => {
                assert_eq!((partner, p, q), (0, 1, 1));
                assert_eq!(x, 3, "mode offset survives 12.5% noise");
            }
            ref h => panic!("expected AlignTo, got {h:?}"),
        }
    }

    /// Pure noise must NOT produce an alignment (tolerance lower bound).
    #[test]
    fn uncorrelated_regions_get_no_alignment() {
        let mut m = CoAccessMiner::new();
        m.register_region(0, RegionKind::Array, 4, 4096);
        m.register_region(1, RegionKind::Array, 4, 4096);
        for i in 0..300u64 {
            m.record(&touch(0, (i * 2654435761) % 4096, i));
            m.record(&touch(1, (i * 40503 + 7) % 4096, i));
        }
        let profile = AffinityProfile::infer(&m.finish());
        for r in [0, 1] {
            let h = &profile.region_hint(r).expect("hinted").hint;
            assert!(
                !matches!(h, InferredHint::AlignTo { .. } | InferredHint::IntraStride { .. }),
                "region {r} must not fit an affine relation, got {h:?}"
            );
        }
    }

    /// Random-indexed dense array → Partition; sequential one → not.
    #[test]
    fn random_indexing_infers_partition() {
        let mut m = CoAccessMiner::new();
        m.register_region(0, RegionKind::Array, 8, 1 << 14);
        for s in 0..200u64 {
            m.record(&touch(0, (s * 2654435761) % (1 << 14), s));
        }
        let profile = AffinityProfile::infer(&m.finish());
        assert_eq!(profile.region_hint(0).expect("props").hint, InferredHint::Partition);

        let mut m = CoAccessMiner::new();
        m.register_region(0, RegionKind::Array, 8, 1 << 14);
        for s in 0..200u64 {
            m.record(&touch(0, s * 3, s));
        }
        let profile = AffinityProfile::infer(&m.finish());
        assert_eq!(profile.region_hint(0).expect("seq").hint, InferredHint::None);
    }

    /// Multi-node traversals → Chain, resolved through `hint_for` into
    /// `Irregular` with the caller's neighbor set.
    #[test]
    fn traversals_infer_chains() {
        let mut m = CoAccessMiner::new();
        m.register_region(0, RegionKind::Nodes, 64, 0);
        for s in 0..100u64 {
            for k in 0..4u64 {
                m.record(&touch(0, s * 131 + k * 17, s));
            }
        }
        let profile = AffinityProfile::infer(&m.finish());
        assert_eq!(profile.region_hint(0).expect("nodes").hint, InferredHint::Chain);
        let prev = VAddr(0x1000);
        assert_eq!(
            profile.hint_for(0, |_| None, &[prev]),
            AffinityHint::Irregular {
                aff_addrs: vec![prev]
            }
        );
    }

    #[test]
    fn hint_for_resolves_partners_and_degrades() {
        let profile = AffinityProfile {
            hints: vec![RegionHint {
                region: 1,
                kind: "array".into(),
                hint: InferredHint::AlignTo {
                    partner: 0,
                    p: 1,
                    q: 1,
                    x: 0,
                },
                confidence: 1.0,
            }],
            traffic_bytes_per_op: 0.0,
            offload_nsc: false,
            steps: 0,
            touch_events: 0,
        };
        let base = VAddr(0x4000);
        assert_eq!(
            profile.hint_for(1, |r| (r == 0).then_some(base), &[]),
            AffinityHint::AlignTo {
                partner: base,
                p: 1,
                q: 1,
                x: 0
            }
        );
        // Unresolvable partner and unknown region degrade to None.
        assert_eq!(profile.hint_for(1, |_| None, &[]), AffinityHint::None);
        assert_eq!(profile.hint_for(9, |_| Some(base), &[]), AffinityHint::None);
    }

    #[test]
    fn json_round_trip() {
        let profile = AffinityProfile {
            hints: vec![
                RegionHint {
                    region: 0,
                    kind: "array".into(),
                    hint: InferredHint::IntraStride { stride: 512 },
                    confidence: 0.998,
                },
                RegionHint {
                    region: 1,
                    kind: "array".into(),
                    hint: InferredHint::AlignTo {
                        partner: 0,
                        p: 3,
                        q: 2,
                        x: 5,
                    },
                    confidence: 1.0,
                },
                RegionHint {
                    region: 2,
                    kind: "nodes".into(),
                    hint: InferredHint::Chain,
                    confidence: 0.75,
                },
                RegionHint {
                    region: 3,
                    kind: "array".into(),
                    hint: InferredHint::Partition,
                    confidence: 0.5,
                },
                RegionHint {
                    region: 4,
                    kind: "array".into(),
                    hint: InferredHint::None,
                    confidence: 0.0,
                },
            ],
            traffic_bytes_per_op: 12.25,
            offload_nsc: true,
            steps: 4096,
            touch_events: 20480,
        };
        let json = profile.to_json();
        let back = AffinityProfile::from_json(&json).expect("parses");
        assert_eq!(back, profile);
        // Deterministic serialization.
        assert_eq!(json, back.to_json());
        // Junk is rejected, not misparsed.
        assert!(AffinityProfile::from_json("{}").is_none());
        assert!(AffinityProfile::from_json("{\"schema\":\"other/v9\"}").is_none());
    }

    #[test]
    fn offload_verdict_follows_traffic_ratio() {
        use aff_sim_core::trace::TrafficKind;
        let mut m = CoAccessMiner::new();
        m.record(&Event::CoreOps { count: 10 });
        m.record(&Event::Traffic {
            src: 0,
            dst: 1,
            payload_bytes: 64,
            class: TrafficKind::Data,
            count: 10,
        });
        let p = AffinityProfile::infer(&m.finish());
        assert!(p.offload_nsc, "64 B/op is movement-bound");
        assert!((p.traffic_bytes_per_op - 64.0).abs() < 1e-9);

        let mut m = CoAccessMiner::new();
        m.record(&Event::CoreOps { count: 1000 });
        m.record(&Event::Traffic {
            src: 0,
            dst: 1,
            payload_bytes: 64,
            class: TrafficKind::Data,
            count: 1,
        });
        let p = AffinityProfile::infer(&m.finish());
        assert!(!p.offload_nsc, "0.064 B/op is compute-bound");
    }
}

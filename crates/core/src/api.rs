//! The affinity-alloc API surface (Fig 8(a) and Fig 10 of the paper).

use aff_mem::addr::VAddr;
use aff_mem::pool::PoolError;
use serde::{Deserialize, Serialize};

/// Maximum affinity addresses per irregular allocation (§5.1: the
/// application samples a subset when it has more).
pub const MAX_AFFINITY_ADDRS: usize = 32;

/// The unified affinity-hint vocabulary — the one type the allocator
/// consumes whether a hint was **hand-annotated** (the paper's Fig 8/10
/// API) or **inferred** from a profiling run by `crate::infer`.
///
/// [`AffineArrayReq`]'s builder methods and `malloc_aff`'s `aff_addrs`
/// slice are thin constructors over this enum; `AffinityAllocator::
/// malloc_hinted` and `AllocService::malloc_hinted` accept it directly.
///
/// # Example
///
/// ```
/// use affinity_alloc::{AffineArrayReq, AffinityHint};
/// use aff_mem::addr::VAddr;
///
/// let h = AffinityHint::AlignTo { partner: VAddr(0x40), p: 1, q: 2, x: 3 };
/// let req = AffineArrayReq::with_hint(8, 100, &h);
/// assert_eq!(req.hint(), h);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AffinityHint {
    /// No affinity structure: the allocator picks freely (Eq 4 over an
    /// empty affinity set).
    #[default]
    None,
    /// Inter-array alignment (Eq 2): element `i` of this allocation aligns
    /// with element `(p/q)·i + x` of `partner`.
    AlignTo {
        /// The partner array's base address.
        partner: VAddr,
        /// Ratio numerator.
        p: u64,
        /// Ratio denominator.
        q: u64,
        /// Offset in partner elements.
        x: u64,
    },
    /// Intra-array affinity between elements `i` and `i + stride`
    /// (Fig 8(c): row stride of a 2-D array accessed by column).
    IntraStride {
        /// The co-accessed element stride.
        stride: u64,
    },
    /// Spread the allocation exactly once across all banks (Fig 9:
    /// distributing graph partitions).
    Partition,
    /// Irregular affinity (Fig 10/11): co-locate with these previously
    /// allocated addresses. More than [`MAX_AFFINITY_ADDRS`] entries are
    /// legal here — `malloc_hinted` subsamples deterministically, unlike
    /// the legacy `malloc_aff` path which rejects oversized sets.
    Irregular {
        /// Affinity addresses (allocation order preserved).
        aff_addrs: Vec<VAddr>,
    },
}

impl AffinityHint {
    /// Stable lower-case label (profile serialization, metrics).
    pub fn label(&self) -> &'static str {
        match self {
            AffinityHint::None => "none",
            AffinityHint::AlignTo { .. } => "align_to",
            AffinityHint::IntraStride { .. } => "intra_stride",
            AffinityHint::Partition => "partition",
            AffinityHint::Irregular { .. } => "irregular",
        }
    }

    /// Whether this hint carries any affinity structure.
    pub fn is_some(&self) -> bool {
        !matches!(self, AffinityHint::None)
            && !matches!(self, AffinityHint::Irregular { aff_addrs } if aff_addrs.is_empty())
    }
}

/// The affine allocation request — the Rust rendering of the paper's
/// `AffineArray` struct (Fig 8(a)).
///
/// Alignment semantics (Eq 2): element `i` of the new array aligns with
/// element `(align_p / align_q) · i + align_x` of `align_to`.
///
/// # Example
///
/// ```
/// use affinity_alloc::{AffineArrayReq, AffinityHint};
///
/// // float A[N] with default layout:
/// let a = AffineArrayReq::new(4, 1024);
/// // double C[N] with C[i] aligned to A[i]  (Fig 8(b)):
/// # use affinity_alloc::{AffinityAllocator, BankSelectPolicy};
/// # use aff_sim_core::config::MachineConfig;
/// # let mut alloc = AffinityAllocator::new(MachineConfig::paper_default(), BankSelectPolicy::Hybrid { h: 5.0 });
/// # let a_addr = alloc.malloc_aff_affine(&a).unwrap();
/// let c = AffineArrayReq::with_hint(
///     8,
///     1024,
///     &AffinityHint::AlignTo { partner: a_addr, p: 1, q: 1, x: 0 },
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AffineArrayReq {
    /// Element size in bytes.
    pub elem_size: u64,
    /// Number of elements.
    pub num_elem: u64,
    /// The aligned-to affine array (`None` ⇒ default or intra-array layout).
    pub align_to: Option<VAddr>,
    /// Alignment ratio numerator (Eq 2). Default 1.
    pub align_p: u64,
    /// Alignment ratio denominator (Eq 2). Default 1.
    pub align_q: u64,
    /// Alignment offset (Eq 2); with `align_to == None`, a nonzero value
    /// requests *intra-array* affinity between elements `i` and `i + x`
    /// (Fig 8(c): row stride of a 2-D array accessed by column).
    pub align_x: u64,
    /// Force an interleave that spreads the array exactly once across all
    /// banks (Fig 9: distributing graph partitions).
    pub partition: bool,
}

impl AffineArrayReq {
    /// Request with all alignment parameters at their defaults
    /// (`p = q = 1`, `x = 0`, no partner, no partition).
    pub fn new(elem_size: u64, num_elem: u64) -> Self {
        Self {
            elem_size,
            num_elem,
            align_to: None,
            align_p: 1,
            align_q: 1,
            align_x: 0,
            partition: false,
        }
    }

    /// Request carrying `hint` — the unified constructor both annotation
    /// sites and inferred profiles go through. [`AffinityHint::Irregular`]
    /// and [`AffinityHint::None`] map to the default layout here (irregular
    /// affinity addresses ride the `malloc_hinted` node path, not the
    /// affine-array path).
    pub fn with_hint(elem_size: u64, num_elem: u64, hint: &AffinityHint) -> Self {
        let mut r = Self::new(elem_size, num_elem);
        match *hint {
            AffinityHint::None | AffinityHint::Irregular { .. } => {}
            AffinityHint::AlignTo { partner, p, q, x } => {
                r.align_to = Some(partner);
                r.align_p = p;
                r.align_q = q;
                r.align_x = x;
            }
            AffinityHint::IntraStride { stride } => r.align_x = stride,
            AffinityHint::Partition => r.partition = true,
        }
        r
    }

    /// The hint this request encodes, in the unified vocabulary. Partition
    /// wins over the other axes (matching `derive_placement`'s precedence);
    /// a nonzero `align_x` without a partner is intra-array affinity.
    pub fn hint(&self) -> AffinityHint {
        if self.partition {
            AffinityHint::Partition
        } else if let Some(partner) = self.align_to {
            AffinityHint::AlignTo {
                partner,
                p: self.align_p,
                q: self.align_q,
                x: self.align_x,
            }
        } else if self.align_x != 0 {
            AffinityHint::IntraStride {
                stride: self.align_x,
            }
        } else {
            AffinityHint::None
        }
    }

    /// Align element-for-element with `partner` (`B[i] ↔ A[i]`).
    #[deprecated(
        since = "0.1.0",
        note = "construct via `AffineArrayReq::with_hint` with `AffinityHint::AlignTo`"
    )]
    pub fn align_to(mut self, partner: VAddr) -> Self {
        self.align_to = Some(partner);
        self
    }

    /// Align with ratio and offset: `B[i] ↔ A[(p/q)·i + x]`.
    #[deprecated(
        since = "0.1.0",
        note = "construct via `AffineArrayReq::with_hint` with `AffinityHint::AlignTo`"
    )]
    pub fn align_ratio(mut self, p: u64, q: u64, x: u64) -> Self {
        self.align_p = p;
        self.align_q = q;
        self.align_x = x;
        self
    }

    /// Request intra-array affinity between elements `i` and `i + row_stride`
    /// (Fig 8(c)).
    #[deprecated(
        since = "0.1.0",
        note = "construct via `AffineArrayReq::with_hint` with `AffinityHint::IntraStride`"
    )]
    pub fn intra_stride(mut self, row_stride: u64) -> Self {
        self.align_to = None;
        self.align_x = row_stride;
        self
    }

    /// Set the partition flag (Fig 9).
    #[deprecated(
        since = "0.1.0",
        note = "construct via `AffineArrayReq::with_hint` with `AffinityHint::Partition`"
    )]
    pub fn partitioned(mut self) -> Self {
        self.partition = true;
        self
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.elem_size * self.num_elem
    }

    /// Total payload bytes, or [`AllocError::Oversized`] on `u64` overflow —
    /// the checked form every allocation path uses so an absurd
    /// `elem_size × num_elem` surfaces as a typed rejection instead of a
    /// debug-mode overflow panic.
    pub fn checked_total_bytes(&self) -> Result<u64, AllocError> {
        self.elem_size
            .checked_mul(self.num_elem)
            .ok_or(AllocError::Oversized {
                elem_size: self.elem_size,
                num_elem: self.num_elem,
            })
    }
}

/// Which quota axis an admission rejection hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuotaKind {
    /// The tenant's resident-byte cap.
    Bytes,
    /// The tenant's bank-partition quota.
    Banks,
    /// The tenant's reserved-pool share (claimed bytes incl. fragmentation).
    PoolReserve,
}

impl QuotaKind {
    /// Stable lower-case label (error messages, metrics names).
    pub fn label(self) -> &'static str {
        match self {
            QuotaKind::Bytes => "bytes",
            QuotaKind::Banks => "banks",
            QuotaKind::PoolReserve => "pool_reserve",
        }
    }
}

/// Errors from the affinity allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// Zero-sized request.
    ZeroSize,
    /// `align_p` or `align_q` is zero.
    BadRatio,
    /// More than [`MAX_AFFINITY_ADDRS`] affinity addresses.
    TooManyAffinityAddrs {
        /// How many were passed.
        got: usize,
    },
    /// `align_to` does not name an array this allocator allocated.
    UnknownPartner {
        /// The unrecognized address.
        addr: VAddr,
    },
    /// The address passed to `free_aff` was never allocated (or was already
    /// freed).
    UnknownAddress {
        /// The unrecognized address.
        addr: VAddr,
    },
    /// Pool/OS-level failure.
    Pool(PoolError),
    /// Intra-array request where `align_p/q ≠ 1` (§4.2 footnote: otherwise
    /// the alignment is no longer affine).
    NonUnitIntraRatio,
    /// `elem_size × num_elem` overflows `u64` — no machine this simulator
    /// models can hold it, and letting it wrap would corrupt quota and
    /// residency accounting.
    Oversized {
        /// Requested element size.
        elem_size: u64,
        /// Requested element count.
        num_elem: u64,
    },
    /// Admission control: the request would push the tenant past one of its
    /// declared quotas. The shard is untouched; retrying without freeing
    /// cannot succeed.
    QuotaExceeded {
        /// Rejected tenant.
        tenant: u32,
        /// Which quota axis was hit.
        kind: QuotaKind,
        /// What admitting the request would have brought usage to.
        requested: u64,
        /// The declared limit.
        limit: u64,
    },
    /// Admission control: the service's current admission window is over
    /// capacity and this tenant's priority lost the shedding decision.
    /// Transient by construction — retry after `retry_in` admission ticks
    /// (the deterministic backoff in `RetryPolicy` does this for you).
    Overloaded {
        /// Shed tenant.
        tenant: u32,
        /// Admission ticks until the current window rolls over.
        retry_in: u64,
    },
    /// The tenant id does not name a registered tenant of this service.
    UnknownTenant {
        /// The unrecognized id.
        tenant: u32,
    },
    /// Registration: the service's bank pool cannot satisfy the requested
    /// bank partition.
    BankPoolExhausted {
        /// Banks requested.
        requested: u32,
        /// Unpartitioned healthy banks remaining.
        available: u32,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::ZeroSize => write!(f, "zero-sized allocation"),
            AllocError::BadRatio => write!(f, "alignment ratio with zero numerator or denominator"),
            AllocError::TooManyAffinityAddrs { got } => {
                write!(f, "{got} affinity addresses exceeds the limit of {MAX_AFFINITY_ADDRS}")
            }
            AllocError::UnknownPartner { addr } => {
                write!(f, "align_to address {addr} is not an allocated affine array")
            }
            AllocError::UnknownAddress { addr } => {
                write!(f, "address {addr} was not allocated by this allocator")
            }
            AllocError::Pool(e) => write!(f, "pool error: {e}"),
            AllocError::NonUnitIntraRatio => {
                write!(f, "intra-array affinity requires align_p = align_q = 1")
            }
            AllocError::Oversized {
                elem_size,
                num_elem,
            } => {
                write!(f, "{elem_size} B × {num_elem} elements overflows u64")
            }
            AllocError::QuotaExceeded {
                tenant,
                kind,
                requested,
                limit,
            } => {
                write!(
                    f,
                    "tenant {tenant} over {} quota: {requested} > {limit}",
                    kind.label()
                )
            }
            AllocError::Overloaded { tenant, retry_in } => {
                write!(
                    f,
                    "service overloaded, tenant {tenant} shed; retry in {retry_in} ticks"
                )
            }
            AllocError::UnknownTenant { tenant } => {
                write!(f, "tenant {tenant} is not registered with this service")
            }
            AllocError::BankPoolExhausted {
                requested,
                available,
            } => {
                write!(
                    f,
                    "bank partition of {requested} requested but only {available} banks remain"
                )
            }
        }
    }
}

impl std::error::Error for AllocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AllocError::Pool(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PoolError> for AllocError {
    fn from(e: PoolError) -> Self {
        AllocError::Pool(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_fig8a() {
        let r = AffineArrayReq::new(4, 100);
        assert_eq!(r.align_p, 1);
        assert_eq!(r.align_q, 1);
        assert_eq!(r.align_x, 0);
        assert!(r.align_to.is_none());
        assert!(!r.partition);
        assert_eq!(r.total_bytes(), 400);
    }

    #[test]
    #[allow(deprecated)]
    fn builder_chains() {
        let r = AffineArrayReq::new(4, 100)
            .align_to(VAddr(0x40))
            .align_ratio(4, 1, 2);
        assert_eq!(r.align_to, Some(VAddr(0x40)));
        assert_eq!((r.align_p, r.align_q, r.align_x), (4, 1, 2));
        let p = AffineArrayReq::new(4, 100).partitioned();
        assert!(p.partition);
        let i = AffineArrayReq::new(4, 100).intra_stride(32);
        assert_eq!(i.align_x, 32);
        assert!(i.align_to.is_none());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_builders_equal_hint_constructors() {
        // The shim contract: every legacy builder chain produces the exact
        // request `with_hint` produces for the corresponding hint.
        let legacy = AffineArrayReq::new(4, 100).align_to(VAddr(0x40)).align_ratio(4, 1, 2);
        let hinted = AffineArrayReq::with_hint(
            4,
            100,
            &AffinityHint::AlignTo {
                partner: VAddr(0x40),
                p: 4,
                q: 1,
                x: 2,
            },
        );
        assert_eq!(legacy, hinted);
        assert_eq!(
            AffineArrayReq::new(4, 100).partitioned(),
            AffineArrayReq::with_hint(4, 100, &AffinityHint::Partition)
        );
        assert_eq!(
            AffineArrayReq::new(4, 100).intra_stride(32),
            AffineArrayReq::with_hint(4, 100, &AffinityHint::IntraStride { stride: 32 })
        );
        assert_eq!(
            AffineArrayReq::new(4, 100),
            AffineArrayReq::with_hint(4, 100, &AffinityHint::None)
        );
    }

    #[test]
    fn hint_round_trips() {
        for h in [
            AffinityHint::None,
            AffinityHint::AlignTo {
                partner: VAddr(0x80),
                p: 2,
                q: 3,
                x: 5,
            },
            AffinityHint::IntraStride { stride: 128 },
            AffinityHint::Partition,
        ] {
            assert_eq!(AffineArrayReq::with_hint(8, 64, &h).hint(), h, "{}", h.label());
        }
        // Irregular is not representable on the affine-array axis: it maps
        // to the default layout and reads back as None.
        let irr = AffinityHint::Irregular {
            aff_addrs: vec![VAddr(0x40)],
        };
        assert_eq!(AffineArrayReq::with_hint(8, 64, &irr).hint(), AffinityHint::None);
        assert!(irr.is_some());
        assert!(!AffinityHint::Irregular { aff_addrs: vec![] }.is_some());
        assert!(!AffinityHint::None.is_some());
    }

    #[test]
    fn errors_display() {
        assert!(AllocError::ZeroSize.to_string().contains("zero-sized"));
        assert!(AllocError::TooManyAffinityAddrs { got: 40 }
            .to_string()
            .contains("40"));
        assert!(AllocError::Pool(PoolError::IotFull).to_string().contains("pool"));
    }
}

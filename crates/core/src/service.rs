//! `AllocService`: the sharded multi-tenant front end over
//! [`AffinityAllocator`] — the ROADMAP's "allocator becomes a service, not a
//! library" direction, with robustness as the contract.
//!
//! # Architecture
//!
//! Every tenant registers with a [`TenantSpec`] (byte quota, bank quota,
//! reserved-pool share, shedding priority) and gets its own **shard**: a
//! private `AffinityAllocator` whose placement is restricted to a disjoint
//! bank partition carved from the mesh
//! ([`AffinityAllocator::restrict_banks`]), with free-list coalescing on and
//! its own RNG stream (`SimRng::split(seed, tenant)`). Shards share nothing:
//! no allocator state, no RNG, no cursors. That makes the headline isolation
//! invariant *structural*:
//!
//! > Faults injected into tenant A's banks leave tenant B's output
//! > byte-identical to B running alone — B's candidate banks (its partition
//! > minus *its* failures), its RNG stream and its pool cursors are all
//! > untouched by anything that happens to A.
//!
//! The per-tenant [`digest`](AllocService::digest) folds every admission
//! outcome and placement into one value, so "byte-identical output" is one
//! `u64` comparison the bench harness enforces online (a mismatch panics the
//! cell, which the sweep engine turns into a soft failure — the same
//! mechanism as the chaos invariants).
//!
//! # Admission control
//!
//! Every request ticks a logical **admission clock**; `window_ops`
//! consecutive ticks form a window admitting at most `window_capacity`
//! requests. Beyond capacity, requests are **shed lowest-priority-first**:
//! tenants at the service's minimum priority are rejected with
//! [`AllocError::Overloaded`] immediately, while higher-priority tenants may
//! use `priority_headroom` extra admissions before they too are shed. Frees
//! are always admitted (shedding a free would *increase* pressure) but still
//! advance the clock. [`AllocError::QuotaExceeded`] rejections are
//! per-tenant and leave the shard untouched.
//!
//! `Overloaded` is transient by construction; the
//! [`with_retry`](AllocService::malloc_aff_with_retry) wrapper backs off by
//! a deterministic, jittered number of clock ticks
//! ([`RetryPolicy::backoff_ticks`]) and retries — no wall-clock, no
//! unbounded queue, bit-identical across runs.
//!
//! # Fault containment
//!
//! [`inject_fault`](AllocService::inject_fault) folds a [`FaultChange`] into
//! the service-wide cumulative plan and re-solves every shard under it.
//! Evacuation charges for a killed bank are attributed to the **partition
//! owner** (the tenant whose banks include it); quota accounting follows the
//! migrated lines (residency moves with the data, so the ledger is
//! unchanged, and the migration volume is reported per tenant).

use crate::api::{AffineArrayReq, AffinityHint, AllocError, QuotaKind};
use crate::policy::BankSelectPolicy;
use crate::runtime::{AffinityAllocator, FragmentationReport};
use aff_mem::addr::VAddr;
use aff_sim_core::config::{MachineConfig, CACHE_LINE};
use aff_sim_core::fault::{FaultChange, FaultPlan};
use aff_sim_core::rng::SimRng;
use aff_sim_core::tenant::{RetryPolicy, TenantId, TenantSpec, TenantUsage};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Service-level configuration: the machine, the shared admission budget and
/// the retry policy.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The simulated machine every shard allocates against.
    pub machine: MachineConfig,
    /// Bank-select policy for every shard.
    pub policy: BankSelectPolicy,
    /// Root seed; tenant `t`'s shard RNG is `SimRng::split(seed, t)`.
    pub seed: u64,
    /// Admission-window length in clock ticks.
    pub window_ops: u64,
    /// Requests admitted per window before shedding starts.
    pub window_capacity: u64,
    /// Extra admissions per window available only to tenants above the
    /// service's minimum priority (lowest-priority tenants shed first).
    pub priority_headroom: u64,
    /// Deterministic backoff policy for `Overloaded` retries.
    pub retry: RetryPolicy,
    /// Automatic `reclaim_pool_tails` every this-many frees per shard
    /// (0 disables) — the reclamation half of the anti-fragmentation story.
    pub reclaim_every: u64,
}

impl ServiceConfig {
    /// Paper-default machine, Hybrid policy, seed 2023, and a window sized
    /// so single-tenant workloads never shed.
    pub fn paper_default() -> Self {
        Self {
            machine: MachineConfig::paper_default(),
            policy: BankSelectPolicy::paper_default(),
            seed: 2023,
            window_ops: 1024,
            window_capacity: 1024,
            priority_headroom: 0,
            retry: RetryPolicy::default(),
            reclaim_every: 64,
        }
    }

    /// Builder: set the admission window (`ops` ticks, `capacity` admits,
    /// `headroom` extra for above-minimum priorities).
    pub fn window(mut self, ops: u64, capacity: u64, headroom: u64) -> Self {
        self.window_ops = ops.max(1);
        self.window_capacity = capacity;
        self.priority_headroom = headroom;
        self
    }
}

/// Per-tenant admission/fault counters (the service half of
/// [`TenantUsage`]; the NSC engine fills in the offload half).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Requests admitted (malloc + free + realloc).
    pub admitted: u64,
    /// Requests rejected over quota.
    pub quota_rejects: u64,
    /// Requests shed under overload.
    pub shed: u64,
    /// Retries performed by the backoff wrapper.
    pub retries: u64,
    /// Clock ticks spent backing off.
    pub backoff_ticks: u64,
    /// Cache lines evacuated from this tenant's banks by fault events.
    pub evacuated_lines: u64,
    /// Bytes whose placement migrated with those evacuations.
    pub migrated_bytes: u64,
}

/// One tenant's world: spec, partition, private allocator, counters, and
/// the output digest the isolation invariant compares.
#[derive(Debug)]
struct TenantShard {
    spec: TenantSpec,
    banks: Vec<u32>,
    alloc: AffinityAllocator,
    stats: TenantStats,
    /// Service-side residency ledger (bytes). The churn proptest pins this
    /// to the allocator's own `resident_per_bank` sum — the conservation
    /// invariant.
    ledger_bytes: u64,
    /// FNV-1a over every admission outcome and placement: the tenant's
    /// "figure output bytes" as one u64.
    digest: u64,
    /// Frees since the last automatic tail reclaim.
    frees_since_reclaim: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl TenantShard {
    fn fold(&mut self, tag: u8, a: u64, b: u64) {
        self.digest = fnv(self.digest, &[tag]);
        self.digest = fnv(self.digest, &a.to_le_bytes());
        self.digest = fnv(self.digest, &b.to_le_bytes());
    }

    fn resident_truth(&self) -> u64 {
        self.alloc.resident_per_bank().iter().sum()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking cell poisons its own shard only; recover the data — the
    // sweep engine already treats the cell as soft-failed.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The sharded multi-tenant allocator service. See the module docs for the
/// architecture; construction is [`AllocService::new`] +
/// [`register`](AllocService::register) per tenant.
#[derive(Debug)]
pub struct AllocService {
    cfg: ServiceConfig,
    shards: RwLock<Vec<Arc<Mutex<TenantShard>>>>,
    /// Next unassigned bank (partitions are carved contiguously).
    next_bank: Mutex<u32>,
    /// Logical admission clock (ticks once per request; backoff advances it).
    clock: AtomicU64,
    /// Window index `window_admitted` counts for.
    window_epoch: AtomicU64,
    /// Requests admitted in the current window.
    window_admitted: AtomicU64,
    /// Minimum priority over all registered tenants (shed first).
    min_priority: AtomicU64,
    /// Total requests shed, all tenants.
    shed_total: AtomicU64,
    /// Cumulative service-wide fault plan.
    faults: Mutex<FaultPlan>,
}

impl AllocService {
    /// A service with no tenants over `cfg`'s machine.
    pub fn new(cfg: ServiceConfig) -> Self {
        Self {
            cfg,
            shards: RwLock::new(Vec::new()),
            next_bank: Mutex::new(0),
            clock: AtomicU64::new(0),
            window_epoch: AtomicU64::new(0),
            window_admitted: AtomicU64::new(0),
            min_priority: AtomicU64::new(u64::MAX),
            shed_total: AtomicU64::new(0),
            faults: Mutex::new(FaultPlan::none()),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Register a tenant: carve `spec.bank_quota` banks off the mesh, build
    /// its shard (own allocator, own RNG stream, coalescing on, current
    /// fault plan applied) and return its dense id.
    ///
    /// # Errors
    ///
    /// [`AllocError::BankPoolExhausted`] when the unpartitioned banks cannot
    /// cover `bank_quota` (or it is zero).
    pub fn register(&self, spec: TenantSpec) -> Result<TenantId, AllocError> {
        let total = self.cfg.machine.num_banks();
        let mut next = lock(&self.next_bank);
        let available = total - *next;
        if spec.bank_quota == 0 || spec.bank_quota > available {
            return Err(AllocError::BankPoolExhausted {
                requested: spec.bank_quota,
                available,
            });
        }
        let banks: Vec<u32> = (*next..*next + spec.bank_quota).collect();
        *next += spec.bank_quota;

        let mut shards = self
            .shards
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let id = shards.len() as u32;
        let shard_seed = SimRng::split(self.cfg.seed, u64::from(id)).below(u64::MAX);
        let mut alloc =
            AffinityAllocator::with_seed(self.cfg.machine.clone(), self.cfg.policy, shard_seed);
        alloc.restrict_banks(&banks)?;
        alloc.set_coalescing(true);
        let plan = lock(&self.faults);
        if !plan.is_empty() {
            alloc.apply_fault_plan(&plan);
        }
        drop(plan);
        self.min_priority
            .fetch_min(u64::from(spec.priority), Ordering::Relaxed);
        shards.push(Arc::new(Mutex::new(TenantShard {
            spec,
            banks,
            alloc,
            stats: TenantStats::default(),
            ledger_bytes: 0,
            digest: FNV_OFFSET ^ u64::from(id),
            frees_since_reclaim: 0,
        })));
        Ok(TenantId(id))
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.shards
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    fn shard(&self, t: TenantId) -> Result<Arc<Mutex<TenantShard>>, AllocError> {
        self.shards
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(t.0 as usize)
            .cloned()
            .ok_or(AllocError::UnknownTenant { tenant: t.0 })
    }

    /// One admission decision. Ticks the clock, rolls the window, sheds
    /// under overload (lowest priority first), then checks the byte and
    /// reserve quotas against `footprint` (0 for frees, which are always
    /// admitted past the overload gate).
    fn admit(&self, t: TenantId, shard: &mut TenantShard, footprint: u64) -> Result<(), AllocError> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let window = tick / self.cfg.window_ops;
        let prev = self.window_epoch.swap(window, Ordering::Relaxed);
        if prev != window {
            self.window_admitted.store(0, Ordering::Relaxed);
        }
        if footprint > 0 {
            let used = self.window_admitted.load(Ordering::Relaxed);
            let cap = self.cfg.window_capacity;
            let min_pri = self.min_priority.load(Ordering::Relaxed);
            let privileged = u64::from(shard.spec.priority) > min_pri;
            let limit = if privileged {
                cap + self.cfg.priority_headroom
            } else {
                cap
            };
            if used >= limit {
                shard.stats.shed += 1;
                self.shed_total.fetch_add(1, Ordering::Relaxed);
                let retry_in = self.cfg.window_ops - (tick % self.cfg.window_ops);
                shard.fold(0xE0, u64::from(t.0), retry_in);
                return Err(AllocError::Overloaded {
                    tenant: t.0,
                    retry_in,
                });
            }
            if shard.ledger_bytes + footprint > shard.spec.quota_bytes {
                shard.stats.quota_rejects += 1;
                shard.fold(0xE1, shard.ledger_bytes + footprint, shard.spec.quota_bytes);
                return Err(AllocError::QuotaExceeded {
                    tenant: t.0,
                    kind: QuotaKind::Bytes,
                    requested: shard.ledger_bytes + footprint,
                    limit: shard.spec.quota_bytes,
                });
            }
            if shard.spec.reserve_share < 1.0 {
                let frag = shard.alloc.fragmentation();
                let claimed =
                    frag.live_bytes + frag.free_bytes + frag.affine_free_bytes + footprint;
                let capacity = shard.banks.len() as u64 * self.cfg.machine.l3_bank_bytes;
                let limit = (shard.spec.reserve_share * capacity as f64) as u64;
                if claimed > limit {
                    shard.stats.quota_rejects += 1;
                    shard.fold(0xE2, claimed, limit);
                    return Err(AllocError::QuotaExceeded {
                        tenant: t.0,
                        kind: QuotaKind::PoolReserve,
                        requested: claimed,
                        limit,
                    });
                }
            }
        }
        self.window_admitted.fetch_add(1, Ordering::Relaxed);
        shard.stats.admitted += 1;
        Ok(())
    }

    /// Irregular `malloc_aff` through admission control.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownTenant`], the admission rejections
    /// ([`AllocError::Overloaded`], [`AllocError::QuotaExceeded`]), or any
    /// allocator error.
    pub fn malloc_aff(
        &self,
        t: TenantId,
        size: u64,
        aff_addrs: &[VAddr],
    ) -> Result<VAddr, AllocError> {
        let cell = self.shard(t)?;
        let mut shard = lock(&cell);
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let footprint = self.cfg.machine.round_up_interleave(size.min(crate::runtime::MAX_ALLOC_BYTES));
        self.admit(t, &mut shard, footprint)?;
        let before = shard.resident_truth();
        let va = shard.alloc.malloc_aff(size, aff_addrs)?;
        let after = shard.resident_truth();
        shard.ledger_bytes += after - before;
        let bank = shard.alloc.bank_of(va);
        shard.fold(0xA0, va.raw(), u64::from(bank));
        Ok(va)
    }

    /// Affine `malloc_aff` through admission control.
    ///
    /// # Errors
    ///
    /// As [`malloc_aff`](Self::malloc_aff), plus the affine request errors.
    pub fn malloc_aff_affine(
        &self,
        t: TenantId,
        req: &AffineArrayReq,
    ) -> Result<VAddr, AllocError> {
        let cell = self.shard(t)?;
        let mut shard = lock(&cell);
        let total = req.checked_total_bytes()?;
        if total == 0 {
            return Err(AllocError::ZeroSize);
        }
        let footprint = self
            .cfg
            .machine
            .round_up_interleave(total.min(crate::runtime::MAX_ALLOC_BYTES));
        self.admit(t, &mut shard, footprint)?;
        let before = shard.resident_truth();
        let va = shard.alloc.malloc_aff_affine(req)?;
        let after = shard.resident_truth();
        shard.ledger_bytes += after - before;
        shard.fold(0xA1, va.raw(), after - before);
        Ok(va)
    }

    /// The unified hint-driven allocation through admission control — one
    /// entry point for every [`AffinityHint`] variant, whether the hint was
    /// hand-annotated or emitted by an inferred `AffinityProfile`. Routing
    /// matches [`AffinityAllocator::malloc_hinted`]: array-shaped hints take
    /// the affine path, `Irregular`/`None` the irregular path, and oversized
    /// irregular sets are subsampled deterministically instead of rejected.
    ///
    /// # Errors
    ///
    /// As [`malloc_aff`](Self::malloc_aff) /
    /// [`malloc_aff_affine`](Self::malloc_aff_affine).
    pub fn malloc_hinted(
        &self,
        t: TenantId,
        elem_size: u64,
        num_elem: u64,
        hint: &AffinityHint,
    ) -> Result<VAddr, AllocError> {
        let cell = self.shard(t)?;
        let mut shard = lock(&cell);
        let total = AffineArrayReq::new(elem_size, num_elem).checked_total_bytes()?;
        if total == 0 {
            return Err(AllocError::ZeroSize);
        }
        let footprint = self
            .cfg
            .machine
            .round_up_interleave(total.min(crate::runtime::MAX_ALLOC_BYTES));
        self.admit(t, &mut shard, footprint)?;
        let before = shard.resident_truth();
        let va = shard.alloc.malloc_hinted(elem_size, num_elem, hint)?;
        let after = shard.resident_truth();
        shard.ledger_bytes += after - before;
        let bank = shard.alloc.bank_of(va);
        shard.fold(0xA4, va.raw(), u64::from(bank));
        Ok(va)
    }

    /// `free_aff` through the service: always admitted (past the overload
    /// gate), ticks the clock, feeds the coalescing free lists and the
    /// periodic tail reclaim.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownTenant`] or [`AllocError::UnknownAddress`].
    pub fn free_aff(&self, t: TenantId, va: VAddr) -> Result<(), AllocError> {
        let cell = self.shard(t)?;
        let mut shard = lock(&cell);
        self.admit(t, &mut shard, 0)?;
        let before = shard.resident_truth();
        shard.alloc.free_aff(va)?;
        let after = shard.resident_truth();
        shard.ledger_bytes = shard.ledger_bytes.saturating_sub(before - after);
        shard.fold(0xA2, va.raw(), before - after);
        shard.frees_since_reclaim += 1;
        if self.cfg.reclaim_every > 0 && shard.frees_since_reclaim >= self.cfg.reclaim_every {
            shard.frees_since_reclaim = 0;
            shard.alloc.reclaim_pool_tails();
        }
        Ok(())
    }

    /// Dynamic re-placement through the service (admitted like a malloc of
    /// the object's footprint minus its current one — i.e. free).
    ///
    /// # Errors
    ///
    /// As the underlying [`AffinityAllocator::realloc_aff`].
    pub fn realloc_aff(
        &self,
        t: TenantId,
        va: VAddr,
        aff_addrs: &[VAddr],
    ) -> Result<VAddr, AllocError> {
        let cell = self.shard(t)?;
        let mut shard = lock(&cell);
        self.admit(t, &mut shard, 0)?;
        let new_va = shard.alloc.realloc_aff(va, aff_addrs)?;
        let bank = shard.alloc.bank_of(new_va);
        shard.fold(0xA3, new_va.raw(), u64::from(bank));
        Ok(new_va)
    }

    /// [`malloc_aff`](Self::malloc_aff) with the deterministic retry loop:
    /// on `Overloaded`, advance the admission clock by
    /// [`RetryPolicy::backoff_ticks`] and try again, up to
    /// `retry.max_attempts`. Returns the address and the number of attempts
    /// used.
    ///
    /// # Errors
    ///
    /// The final [`AllocError::Overloaded`] when every attempt was shed, or
    /// any non-transient error immediately.
    pub fn malloc_aff_with_retry(
        &self,
        t: TenantId,
        size: u64,
        aff_addrs: &[VAddr],
    ) -> Result<(VAddr, u32), AllocError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.malloc_aff(t, size, aff_addrs) {
                Ok(va) => return Ok((va, attempt)),
                Err(AllocError::Overloaded { tenant, retry_in }) => {
                    if attempt >= self.cfg.retry.max_attempts {
                        return Err(AllocError::Overloaded { tenant, retry_in });
                    }
                    let wait = self
                        .cfg
                        .retry
                        .backoff_ticks(self.cfg.seed, t, attempt)
                        .max(retry_in);
                    self.clock.fetch_add(wait, Ordering::Relaxed);
                    if let Ok(cell) = self.shard(t) {
                        let mut shard = lock(&cell);
                        shard.stats.retries += 1;
                        shard.stats.backoff_ticks += wait;
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fold one fault change into the service-wide cumulative plan, re-solve
    /// every shard under it, and attribute evacuation to partition owners:
    /// a newly killed bank charges its owner `ceil(resident/64)` evacuated
    /// lines and the same bytes as migrated (quota accounting follows the
    /// lines — residency moves with the data, so ledgers are unchanged).
    /// Returns the total lines evacuated.
    pub fn inject_fault(&self, change: FaultChange) -> u64 {
        let mut plan = lock(&self.faults);
        let newly_failed: Vec<u32> = match change {
            FaultChange::BankFail(b) if !plan.failed_banks.contains(&b) => vec![b],
            _ => Vec::new(),
        };
        change.apply_to(&mut plan);
        let plan_snapshot = plan.clone();
        drop(plan);

        let shards = self
            .shards
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let mut evacuated = 0u64;
        for cell in &shards {
            let mut shard = lock(cell);
            for &b in &newly_failed {
                if shard.banks.contains(&b) {
                    let bytes = shard
                        .alloc
                        .resident_per_bank()
                        .get(b as usize)
                        .copied()
                        .unwrap_or(0);
                    let lines = bytes.div_ceil(CACHE_LINE);
                    shard.stats.evacuated_lines += lines;
                    shard.stats.migrated_bytes += bytes;
                    evacuated += lines;
                }
            }
            shard.alloc.apply_fault_plan(&plan_snapshot);
        }
        evacuated
    }

    /// The cumulative fault plan currently in force.
    pub fn fault_plan(&self) -> FaultPlan {
        lock(&self.faults).clone()
    }

    /// The tenant's output digest — every admission outcome and placement
    /// folded into one value. This is what the isolation invariant compares
    /// between a multi-tenant faulted run and the tenant's solo run.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownTenant`].
    pub fn digest(&self, t: TenantId) -> Result<u64, AllocError> {
        let cell = self.shard(t)?;
        let d = lock(&cell).digest;
        Ok(d)
    }

    /// The tenant's service-side counters.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownTenant`].
    pub fn stats(&self, t: TenantId) -> Result<TenantStats, AllocError> {
        let cell = self.shard(t)?;
        let s = lock(&cell).stats;
        Ok(s)
    }

    /// The tenant's bank partition.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownTenant`].
    pub fn banks(&self, t: TenantId) -> Result<Vec<u32>, AllocError> {
        let cell = self.shard(t)?;
        let b = lock(&cell).banks.clone();
        Ok(b)
    }

    /// The tenant's resident bytes per the service ledger.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownTenant`].
    pub fn resident_bytes(&self, t: TenantId) -> Result<u64, AllocError> {
        let cell = self.shard(t)?;
        let b = lock(&cell).ledger_bytes;
        Ok(b)
    }

    /// Ground-truth resident bytes summed over every shard's allocator —
    /// what the conservation invariant pins the ledgers to.
    pub fn global_resident_truth(&self) -> u64 {
        let shards = self
            .shards
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        shards.iter().map(|c| lock(c).resident_truth()).sum()
    }

    /// Sum of the per-tenant service ledgers.
    pub fn global_resident_ledger(&self) -> u64 {
        let shards = self
            .shards
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        shards.iter().map(|c| lock(c).ledger_bytes).sum()
    }

    /// Aggregated fragmentation across all shards.
    pub fn fragmentation(&self) -> FragmentationReport {
        let shards = self
            .shards
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let mut out = FragmentationReport::default();
        for cell in &shards {
            let f = lock(cell).alloc.fragmentation();
            out.live_bytes += f.live_bytes;
            out.free_bytes += f.free_bytes;
            out.affine_free_bytes += f.affine_free_bytes;
            for (intrlv, bytes) in f.free_bytes_per_interleave {
                match out
                    .free_bytes_per_interleave
                    .iter_mut()
                    .find(|(i, _)| *i == intrlv)
                {
                    Some((_, b)) => *b += bytes,
                    None => out.free_bytes_per_interleave.push((intrlv, bytes)),
                }
            }
        }
        out.free_bytes_per_interleave.sort_unstable();
        out
    }

    /// Run a tail reclaim on every shard now (the periodic one is automatic).
    /// Returns the bytes reclaimed.
    pub fn reclaim(&self) -> u64 {
        let shards = self
            .shards
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        shards.iter().map(|c| lock(c).alloc.reclaim_pool_tails()).sum()
    }

    /// Per-tenant usage snapshot (service half of the sweep-v5 sidecar
    /// record; the caller merges in the engine's attribution half).
    pub fn usage(&self) -> Vec<TenantUsage> {
        let shards = self
            .shards
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        shards
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                let s = lock(cell);
                let mut u = TenantUsage::new(i as u32, s.spec.name.clone());
                u.admitted = s.stats.admitted;
                u.quota_rejects = s.stats.quota_rejects;
                u.shed = s.stats.shed;
                u.retries = s.stats.retries;
                u.backoff_ticks = s.stats.backoff_ticks;
                u.resident_bytes = s.ledger_bytes;
                u.evacuated_lines = s.stats.evacuated_lines;
                u.migrated_bytes = s.stats.migrated_bytes;
                u
            })
            .collect()
    }

    /// Total requests shed across all tenants.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Current admission-clock value (monotone; backoff advances it too).
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> AllocService {
        AllocService::new(ServiceConfig::paper_default())
    }

    fn spec(name: &str, banks: u32) -> TenantSpec {
        TenantSpec::new(name, 1 << 24, banks)
    }

    #[test]
    fn registration_carves_disjoint_partitions() {
        let s = svc();
        let a = s.register(spec("a", 16)).expect("register a");
        let b = s.register(spec("b", 16)).expect("register b");
        let ba = s.banks(a).expect("banks a");
        let bb = s.banks(b).expect("banks b");
        assert!(ba.iter().all(|x| !bb.contains(x)), "partitions overlap");
        assert_eq!(ba.len(), 16);
        // Exhaustion is typed.
        let err = s.register(spec("c", 64)).expect_err("pool exhausted");
        assert!(matches!(
            err,
            AllocError::BankPoolExhausted {
                requested: 64,
                available: 32
            }
        ));
        assert!(matches!(
            s.register(spec("z", 0)),
            Err(AllocError::BankPoolExhausted { .. })
        ));
    }

    #[test]
    fn malloc_hinted_routes_like_the_legacy_entry_points() {
        let s = svc();
        let t = s.register(spec("a", 16)).expect("register");
        // Irregular and None take the irregular path (admission + ledger).
        let anchor = s.malloc_hinted(t, 64, 1, &AffinityHint::None).expect("anchor");
        let near = s
            .malloc_hinted(t, 64, 1, &AffinityHint::Irregular { aff_addrs: vec![anchor] })
            .expect("near");
        let banks = s.banks(t).expect("banks");
        let cell = s.shard(t).expect("shard");
        {
            let mut shard = lock(&cell);
            for va in [anchor, near] {
                assert!(banks.contains(&shard.alloc.bank_of(va)));
            }
        }
        // Array-shaped hints take the affine path.
        let part = s
            .malloc_hinted(t, 4, 64 * 1024, &AffinityHint::Partition)
            .expect("partitioned");
        let aligned = s
            .malloc_hinted(
                t,
                4,
                64 * 1024,
                &AffinityHint::AlignTo { partner: part, p: 1, q: 1, x: 0 },
            )
            .expect("aligned");
        {
            let mut shard = lock(&cell);
            assert_eq!(shard.alloc.bank_of(part), shard.alloc.bank_of(aligned));
        }
        // Zero-size and quota rejection still apply.
        assert_eq!(
            s.malloc_hinted(t, 0, 10, &AffinityHint::None),
            Err(AllocError::ZeroSize)
        );
        assert!(matches!(
            s.malloc_hinted(t, 1, 1 << 30, &AffinityHint::Partition),
            Err(AllocError::QuotaExceeded { .. })
        ));
    }

    #[test]
    fn placement_stays_inside_the_partition() {
        let s = svc();
        let a = s.register(spec("a", 8)).expect("register");
        let banks = s.banks(a).expect("banks");
        let cell = s.shard(a).expect("shard");
        for i in 0..200 {
            let va = s.malloc_aff(a, 64 + (i % 3) * 64, &[]).expect("alloc");
            let bank = lock(&cell).alloc.bank_of(va);
            assert!(banks.contains(&bank), "bank {bank} outside partition");
        }
    }

    #[test]
    fn byte_quota_rejects_without_state_change() {
        let s = svc();
        let t = s
            .register(TenantSpec::new("small", 4096, 4))
            .expect("register");
        let va = s.malloc_aff(t, 2048, &[]).expect("first alloc fits");
        let before = s.resident_bytes(t).expect("resident");
        let err = s.malloc_aff(t, 4096, &[]).expect_err("over quota");
        assert!(matches!(
            err,
            AllocError::QuotaExceeded {
                kind: QuotaKind::Bytes,
                ..
            }
        ));
        assert_eq!(s.resident_bytes(t).expect("resident"), before);
        assert_eq!(s.stats(t).expect("stats").quota_rejects, 1);
        // Freeing restores headroom.
        s.free_aff(t, va).expect("free");
        s.malloc_aff(t, 4096, &[]).expect("fits after free");
    }

    #[test]
    fn overload_sheds_lowest_priority_first() {
        let cfg = ServiceConfig::paper_default().window(64, 4, 4);
        let s = AllocService::new(cfg);
        let lo = s.register(spec("lo", 8)).expect("lo");
        let hi = s
            .register(spec("hi", 8).priority(3))
            .expect("hi");
        // Fill the base capacity.
        for _ in 0..4 {
            s.malloc_aff(lo, 64, &[]).expect("under capacity");
        }
        // Low priority is now shed; high priority rides the headroom.
        let err = s.malloc_aff(lo, 64, &[]).expect_err("lo shed");
        assert!(matches!(err, AllocError::Overloaded { .. }));
        s.malloc_aff(hi, 64, &[]).expect("hi admitted via headroom");
        assert_eq!(s.stats(lo).expect("stats").shed, 1);
        assert_eq!(s.stats(hi).expect("stats").shed, 0);
        assert_eq!(s.shed_total(), 1);
    }

    #[test]
    fn retry_backoff_rolls_the_window_deterministically() {
        let cfg = ServiceConfig::paper_default().window(32, 2, 0);
        let s = AllocService::new(cfg);
        let t = s.register(spec("t", 8)).expect("register");
        s.malloc_aff(t, 64, &[]).expect("1");
        s.malloc_aff(t, 64, &[]).expect("2");
        // Window full: a bare malloc sheds, the retry wrapper recovers.
        assert!(matches!(
            s.malloc_aff(t, 64, &[]),
            Err(AllocError::Overloaded { .. })
        ));
        let (_, attempts) = s.malloc_aff_with_retry(t, 64, &[]).expect("retried");
        assert!(attempts >= 2, "needed a backoff, got {attempts}");
        let st = s.stats(t).expect("stats");
        assert!(st.retries >= 1);
        // The wait is max(policy backoff, ticks to the window edge): at
        // least base_ticks, and enough to actually roll the window.
        assert!(st.backoff_ticks >= 16, "backoff below base_ticks");
        assert!(s.clock() >= 32, "clock never reached the next window");
    }

    #[test]
    fn fault_on_a_charges_a_not_b() {
        let s = svc();
        let a = s.register(spec("a", 8)).expect("a");
        let b = s.register(spec("b", 8)).expect("b");
        for _ in 0..64 {
            s.malloc_aff(a, 256, &[]).expect("a alloc");
            s.malloc_aff(b, 256, &[]).expect("b alloc");
        }
        let victim = s.banks(a).expect("banks")[0];
        let lines = s.inject_fault(FaultChange::BankFail(victim));
        assert!(lines > 0, "the victim bank held residency");
        assert_eq!(s.stats(a).expect("a").evacuated_lines, lines);
        assert_eq!(s.stats(b).expect("b").evacuated_lines, 0);
        assert_eq!(s.stats(b).expect("b").migrated_bytes, 0);
        // A's subsequent placements avoid the dead bank; B is untouched.
        let cell = s.shard(a).expect("shard");
        for _ in 0..32 {
            let va = s.malloc_aff(a, 256, &[]).expect("a alloc post-fault");
            assert_ne!(lock(&cell).alloc.bank_of(va), victim);
        }
    }

    #[test]
    fn isolation_digest_is_fault_invariant_below_capacity() {
        let drive = |faulted: bool| -> u64 {
            let s = svc();
            let a = s.register(spec("a", 8)).expect("a");
            let b = s.register(spec("b", 8)).expect("b");
            let mut rng = SimRng::split(7, 99);
            let mut live_b = Vec::new();
            for i in 0..400u64 {
                s.malloc_aff(a, 64, &[]).expect("a alloc");
                if i == 200 && faulted {
                    let victim = s.banks(a).expect("banks")[2];
                    s.inject_fault(FaultChange::BankFail(victim));
                }
                if rng.chance(0.3) {
                    if let Some(va) = live_b.pop() {
                        s.free_aff(b, va).expect("b free");
                        continue;
                    }
                }
                live_b.push(s.malloc_aff(b, 128, &[]).expect("b alloc"));
            }
            s.digest(b).expect("digest")
        };
        assert_eq!(
            drive(false),
            drive(true),
            "faults in A's banks must not change B's output digest"
        );
    }

    #[test]
    fn ledger_matches_allocator_truth_under_churn() {
        let s = svc();
        let t = s.register(spec("t", 16)).expect("register");
        let mut rng = SimRng::split(11, 5);
        let mut live = Vec::new();
        for _ in 0..2000 {
            if !live.is_empty() && rng.chance(0.45) {
                let i = rng.index(live.len());
                let va = live.swap_remove(i);
                s.free_aff(t, va).expect("free");
            } else {
                live.push(s.malloc_aff(t, 64 << rng.below(3), &[]).expect("alloc"));
            }
        }
        let cell = s.shard(t).expect("shard");
        assert_eq!(
            s.resident_bytes(t).expect("ledger"),
            lock(&cell).resident_truth(),
            "service ledger drifted from allocator ground truth"
        );
    }
}

//! Umbrella crate re-exporting the affinity-alloc reproduction stack.
//!
//! See [`affinity_alloc`] for the paper's core contribution and
//! [`aff_workloads`] for the evaluated benchmarks.

pub use aff_cache as cache;
pub use aff_ds as ds;
pub use aff_mem as mem;
pub use aff_noc as noc;
pub use aff_nsc as nsc;
pub use aff_sim_core as sim;
pub use aff_workloads as workloads;
pub use affinity_alloc as alloc;
